//! A minimal JSON value, writer and parser for the bench harness.
//!
//! The build environment vendors a no-op `serde` stand-in (no network, no
//! `serde_json`), so the machine-readable bench output is produced and
//! consumed by this self-contained module instead. It covers exactly what
//! the harness needs — objects, arrays, strings, finite numbers and bools —
//! and guarantees **lossless `f64` round-trips**: numbers are written with
//! Rust's shortest-round-trip formatting and parsed back with
//! `str::parse::<f64>`, so a determinism gate can compare values bit for
//! bit across machines.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Object keys keep their insertion order so emitted files
/// diff cleanly run to run.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite `f64`s are written as `null`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object; `None` on any other variant.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members as a map, if this is an object (drops duplicate keys,
    /// last wins — the writer never emits duplicates).
    pub fn as_map(&self) -> Option<BTreeMap<&str, &JsonValue>> {
        match self {
            JsonValue::Object(members) => Some(
                members
                    .iter()
                    .map(|(k, v)| (k.as_str(), v))
                    .collect::<BTreeMap<_, _>>(),
            ),
            _ => None,
        }
    }

    /// Serialises the value as pretty-printed JSON (2-space indent).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close_pad = "  ".repeat(indent);
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(x) => {
                if x.is_finite() {
                    // Rust's shortest-round-trip float formatting: parsing
                    // the string back yields the identical bits.
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&close_pad);
                out.push(']');
            }
            JsonValue::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in members.iter().enumerate() {
                    out.push_str(&pad);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < members.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&close_pad);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a [`JsonError`] (with byte offset) on malformed input or
/// trailing garbage.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by the harness;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte slice is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty remainder");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E') | Some(b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.error(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_nested_document() {
        let doc = JsonValue::Object(vec![
            ("bench".into(), JsonValue::String("fig12".into())),
            ("ok".into(), JsonValue::Bool(true)),
            ("nothing".into(), JsonValue::Null),
            (
                "metrics".into(),
                JsonValue::Array(vec![
                    JsonValue::Number(0.125),
                    JsonValue::Number(-3.0),
                    JsonValue::Number(1e-9),
                ]),
            ),
            (
                "nested".into(),
                JsonValue::Object(vec![("empty".into(), JsonValue::Array(vec![]))]),
            ),
        ]);
        let text = doc.to_json();
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        // Values with no short decimal representation must survive the
        // write → parse cycle bit for bit (the determinism gate depends on
        // this).
        for &x in &[
            0.1 + 0.2,
            1.0 / 3.0,
            std::f64::consts::PI,
            6.02214076e23,
            5e-324, // smallest subnormal
            f64::MAX,
            -0.0,
        ] {
            let text = JsonValue::Number(x).to_json();
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {text:?}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a \"quoted\"\nline\twith \\ and unicode: Δt≤ε\u{0001}";
        let text = JsonValue::String(s.into()).to_json();
        assert_eq!(parse(&text).unwrap().as_str().unwrap(), s);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,]", "{\"a\":}", "tru", "1.2.3", "{} extra", "\"open",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors_select_the_right_variants() {
        let doc = parse(r#"{"a": 1.5, "b": [true, null], "c": "x"}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_f64(), Some(1.5));
        assert_eq!(doc.get("c").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("b").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(doc.get("missing"), None);
        assert!(doc.as_map().unwrap().contains_key("a"));
        assert_eq!(doc.get("a").unwrap().get("nested"), None);
    }
}
