use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Analytical cost of executing one or more layers over a workload,
/// normalised to a single GPU of a tensor-parallel group.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LayerCost {
    /// Forward floating-point operations.
    pub fwd_flops: f64,
    /// Backward floating-point operations.
    pub bwd_flops: f64,
    /// Bytes of bf16 parameters resident on the GPU.
    pub param_bytes: u64,
    /// Bytes of gradient buffers (bf16, same shape as parameters).
    pub grad_bytes: u64,
    /// Bytes of optimizer state (fp32 master weights + Adam moments).
    pub optimizer_bytes: u64,
    /// Bytes of activations held between forward and backward.
    pub activation_bytes: u64,
    /// Bytes moved over GPU memory during forward (roofline estimate).
    pub fwd_mem_bytes: u64,
    /// Bytes that must cross the tensor-parallel interconnect per forward
    /// pass (all-reduce volume), zero when TP = 1.
    pub tp_comm_bytes: u64,
}

impl LayerCost {
    /// Total forward + backward FLOPs.
    pub fn total_flops(&self) -> f64 {
        self.fwd_flops + self.bwd_flops
    }

    /// Static (workload-independent) memory: parameters, gradients and
    /// optimizer state.
    pub fn static_bytes(&self) -> u64 {
        self.param_bytes + self.grad_bytes + self.optimizer_bytes
    }

    /// Memory moved during the backward pass (roofline estimate:
    /// parameters re-read plus activations re-read and gradients written).
    pub fn bwd_mem_bytes(&self) -> u64 {
        self.param_bytes + 2 * self.activation_bytes + self.grad_bytes
    }

    /// Arithmetic intensity of the forward pass in FLOP per byte of GPU
    /// memory traffic (`fwd_flops / fwd_mem_bytes`). Comparing this against
    /// a device's machine balance (FLOP/B ridge point) tells whether the
    /// layer is compute- or memory-bound there. Returns `f64::INFINITY`
    /// when the layer moves no memory.
    pub fn fwd_arithmetic_intensity(&self) -> f64 {
        if self.fwd_mem_bytes == 0 {
            return f64::INFINITY;
        }
        self.fwd_flops / self.fwd_mem_bytes as f64
    }

    /// Arithmetic intensity of the backward pass in FLOP/B
    /// (`bwd_flops / bwd_mem_bytes()`); see
    /// [`LayerCost::fwd_arithmetic_intensity`].
    pub fn bwd_arithmetic_intensity(&self) -> f64 {
        let mem = self.bwd_mem_bytes();
        if mem == 0 {
            return f64::INFINITY;
        }
        self.bwd_flops / mem as f64
    }

    /// Scales every extensive quantity by `factor` (used when a workload is
    /// split into sub-microbatches while the parameters stay resident).
    pub fn scale_activations(&self, factor: f64) -> LayerCost {
        LayerCost {
            fwd_flops: self.fwd_flops * factor,
            bwd_flops: self.bwd_flops * factor,
            activation_bytes: (self.activation_bytes as f64 * factor) as u64,
            fwd_mem_bytes: (self.fwd_mem_bytes as f64 * factor) as u64,
            tp_comm_bytes: (self.tp_comm_bytes as f64 * factor) as u64,
            ..*self
        }
    }
}

impl Add for LayerCost {
    type Output = LayerCost;

    fn add(self, rhs: LayerCost) -> LayerCost {
        LayerCost {
            fwd_flops: self.fwd_flops + rhs.fwd_flops,
            bwd_flops: self.bwd_flops + rhs.bwd_flops,
            param_bytes: self.param_bytes + rhs.param_bytes,
            grad_bytes: self.grad_bytes + rhs.grad_bytes,
            optimizer_bytes: self.optimizer_bytes + rhs.optimizer_bytes,
            activation_bytes: self.activation_bytes + rhs.activation_bytes,
            fwd_mem_bytes: self.fwd_mem_bytes + rhs.fwd_mem_bytes,
            tp_comm_bytes: self.tp_comm_bytes + rhs.tp_comm_bytes,
        }
    }
}

impl AddAssign for LayerCost {
    fn add_assign(&mut self, rhs: LayerCost) {
        *self = *self + rhs;
    }
}

impl Sum for LayerCost {
    fn sum<I: Iterator<Item = LayerCost>>(iter: I) -> LayerCost {
        iter.fold(LayerCost::default(), Add::add)
    }
}

/// The cost of a (forward, backward) stage pair for one model chunk and one
/// sub-microbatch — the unit of work the DIP scheduler arranges.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StagePairCost {
    /// Cost aggregated over the chunk's layers.
    pub cost: LayerCost,
    /// Number of layers in the chunk.
    pub num_layers: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_every_field() {
        let a = LayerCost {
            fwd_flops: 1.0,
            bwd_flops: 2.0,
            param_bytes: 3,
            grad_bytes: 4,
            optimizer_bytes: 5,
            activation_bytes: 6,
            fwd_mem_bytes: 7,
            tp_comm_bytes: 8,
        };
        let b = a;
        let c = a + b;
        assert_eq!(c.fwd_flops, 2.0);
        assert_eq!(c.param_bytes, 6);
        assert_eq!(c.tp_comm_bytes, 16);
        assert_eq!(c.total_flops(), 6.0);
    }

    #[test]
    fn sum_of_empty_iterator_is_default() {
        let total: LayerCost = std::iter::empty().sum();
        assert_eq!(total, LayerCost::default());
    }

    #[test]
    fn scale_activations_leaves_static_memory_alone() {
        let a = LayerCost {
            fwd_flops: 10.0,
            bwd_flops: 20.0,
            param_bytes: 100,
            grad_bytes: 100,
            optimizer_bytes: 600,
            activation_bytes: 50,
            fwd_mem_bytes: 40,
            tp_comm_bytes: 8,
        };
        let half = a.scale_activations(0.5);
        assert_eq!(half.param_bytes, 100);
        assert_eq!(half.optimizer_bytes, 600);
        assert_eq!(half.activation_bytes, 25);
        assert_eq!(half.fwd_flops, 5.0);
    }

    #[test]
    fn static_bytes_sums_weights_grads_and_optimizer() {
        let a = LayerCost {
            param_bytes: 10,
            grad_bytes: 10,
            optimizer_bytes: 60,
            ..LayerCost::default()
        };
        assert_eq!(a.static_bytes(), 80);
    }
}
