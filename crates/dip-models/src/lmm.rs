use crate::{
    BatchWorkload, LayerCost, Modality, ModalityModule, ModalityWorkload, ModelError, ModuleRole,
};
use serde::{Deserialize, Serialize};

/// Index of a module within an [`LmmSpec`], in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ModuleId(pub usize);

impl std::fmt::Display for ModuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// How a module's workload is derived from a batch's per-modality metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadSource {
    /// The module processes exactly the tokens of one modality
    /// (e.g. the ViT encoder processes image patch tokens).
    Single(Modality),
    /// The module processes the concatenation of all modality tokens
    /// (e.g. an LLM backbone whose input sequence interleaves text and
    /// image tokens).
    AllTokens,
}

impl WorkloadSource {
    /// Extracts the module workload from batch metadata.
    pub fn extract(&self, batch: &BatchWorkload) -> ModalityWorkload {
        match self {
            WorkloadSource::Single(m) => batch.get(*m),
            WorkloadSource::AllTokens => {
                let tokens = batch.total_tokens();
                let sequences = batch
                    .iter()
                    .map(|(_, w)| w.sequences)
                    .max()
                    .unwrap_or(0)
                    .max(u64::from(tokens > 0));
                ModalityWorkload { tokens, sequences }
            }
        }
    }
}

/// A complete large multimodal model: an ordered list of modality modules
/// with the backbone in the middle (Fig. 1 of the paper).
///
/// Modules are stored in *execution order*: every encoder and input adapter
/// appears before the backbone, every output adapter and decoder after it.
/// The pipeline planner relies on this order for data dependencies between
/// pipeline segments (an encoder's forward must finish before the backbone's
/// forward of the same microbatch starts, and conversely for backward).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LmmSpec {
    name: String,
    modules: Vec<ModalityModule>,
    sources: Vec<WorkloadSource>,
}

impl LmmSpec {
    /// Builds an [`LmmSpecBuilder`].
    pub fn builder(name: impl Into<String>) -> LmmSpecBuilder {
        LmmSpecBuilder {
            name: name.into(),
            modules: Vec::new(),
            sources: Vec::new(),
        }
    }

    /// The model's name (e.g. `"VLM-S"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All modules in execution order.
    pub fn modules(&self) -> &[ModalityModule] {
        &self.modules
    }

    /// Number of modules.
    pub fn num_modules(&self) -> usize {
        self.modules.len()
    }

    /// The module with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn module(&self, id: ModuleId) -> &ModalityModule {
        &self.modules[id.0]
    }

    /// The workload source of the module with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn source(&self, id: ModuleId) -> WorkloadSource {
        self.sources[id.0]
    }

    /// Iterates `(id, module)` pairs in execution order.
    pub fn iter(&self) -> impl Iterator<Item = (ModuleId, &ModalityModule)> {
        self.modules
            .iter()
            .enumerate()
            .map(|(i, m)| (ModuleId(i), m))
    }

    /// The backbone module, if any.
    pub fn backbone(&self) -> Option<&ModalityModule> {
        self.modules
            .iter()
            .find(|m| m.role() == ModuleRole::Backbone)
    }

    /// The id of the backbone module, if any.
    pub fn backbone_id(&self) -> Option<ModuleId> {
        self.iter()
            .find(|(_, m)| m.role() == ModuleRole::Backbone)
            .map(|(id, _)| id)
    }

    /// The encoder modules (in execution order).
    pub fn encoders(&self) -> impl Iterator<Item = (ModuleId, &ModalityModule)> {
        self.iter().filter(|(_, m)| m.role() == ModuleRole::Encoder)
    }

    /// The decoder modules (in execution order).
    pub fn decoders(&self) -> impl Iterator<Item = (ModuleId, &ModalityModule)> {
        self.iter().filter(|(_, m)| m.role() == ModuleRole::Decoder)
    }

    /// Looks a module up by name.
    pub fn module_by_name(&self, name: &str) -> Result<(ModuleId, &ModalityModule), ModelError> {
        self.iter()
            .find(|(_, m)| m.name() == name)
            .ok_or_else(|| ModelError::UnknownModule {
                module: name.to_owned(),
            })
    }

    /// Total parameter count across all modules.
    pub fn param_count(&self) -> u64 {
        self.modules.iter().map(ModalityModule::param_count).sum()
    }

    /// Total parameter count in billions.
    pub fn param_billions(&self) -> f64 {
        self.param_count() as f64 / 1e9
    }

    /// The workload each module must process for a given batch.
    pub fn module_workloads(&self, batch: &BatchWorkload) -> Vec<(ModuleId, ModalityWorkload)> {
        self.iter()
            .map(|(id, _)| (id, self.sources[id.0].extract(batch)))
            .collect()
    }

    /// Total model FLOPs (forward + backward) of one microbatch across the
    /// whole model at tensor-parallel degree 1 — the quantity used to compute
    /// model FLOPs utilisation (MFU).
    pub fn model_flops(&self, batch: &BatchWorkload) -> f64 {
        self.module_workloads(batch)
            .iter()
            .map(|(id, wl)| {
                let c = self.module(*id).cost(wl, 1);
                c.total_flops()
            })
            .sum()
    }

    /// Per-GPU cost of the whole model over `batch` at tensor-parallel degree `tp`.
    pub fn cost(&self, batch: &BatchWorkload, tp: usize) -> LayerCost {
        self.module_workloads(batch)
            .iter()
            .map(|(id, wl)| self.module(*id).cost(wl, tp))
            .sum()
    }
}

/// Incremental builder for [`LmmSpec`].
#[derive(Debug, Clone)]
pub struct LmmSpecBuilder {
    name: String,
    modules: Vec<ModalityModule>,
    sources: Vec<WorkloadSource>,
}

impl LmmSpecBuilder {
    /// Appends a module that processes a single modality's tokens.
    pub fn module(mut self, module: ModalityModule) -> Self {
        let source = WorkloadSource::Single(module.modality());
        self.modules.push(module);
        self.sources.push(source);
        self
    }

    /// Appends a module whose workload is the concatenation of all modality
    /// tokens (typically the LLM backbone of a VLM).
    pub fn module_over_all_tokens(mut self, module: ModalityModule) -> Self {
        self.modules.push(module);
        self.sources.push(WorkloadSource::AllTokens);
        self
    }

    /// Finalises the spec.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptySpec`] if no modules were added and
    /// [`ModelError::MultipleBackbones`] if more than one backbone was added.
    pub fn build(self) -> Result<LmmSpec, ModelError> {
        if self.modules.is_empty() {
            return Err(ModelError::EmptySpec);
        }
        let backbones = self
            .modules
            .iter()
            .filter(|m| m.role() == ModuleRole::Backbone)
            .count();
        if backbones > 1 {
            return Err(ModelError::MultipleBackbones);
        }
        Ok(LmmSpec {
            name: self.name,
            modules: self.modules,
            sources: self.sources,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LayerSpec, TransformerKind, TransformerLayer};

    fn layer(dim: usize, kind: TransformerKind) -> LayerSpec {
        LayerSpec::Transformer(TransformerLayer::new(dim, dim * 4, 16, 16, kind).unwrap())
    }

    fn tiny_vlm() -> LmmSpec {
        let vit = ModalityModule::new(
            "vit",
            Modality::Image,
            ModuleRole::Encoder,
            vec![layer(1024, TransformerKind::VitEncoder); 4],
        )
        .unwrap();
        let lm = ModalityModule::new(
            "lm",
            Modality::Text,
            ModuleRole::Backbone,
            vec![layer(2048, TransformerKind::CausalLm); 8],
        )
        .unwrap();
        LmmSpec::builder("tiny-vlm")
            .module(vit)
            .module_over_all_tokens(lm)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates() {
        assert_eq!(
            LmmSpec::builder("empty").build().unwrap_err(),
            ModelError::EmptySpec
        );
        let bb = ModalityModule::new(
            "bb",
            Modality::Text,
            ModuleRole::Backbone,
            vec![layer(256, TransformerKind::CausalLm)],
        )
        .unwrap();
        let err = LmmSpec::builder("two")
            .module(bb.clone())
            .module(bb)
            .build()
            .unwrap_err();
        assert_eq!(err, ModelError::MultipleBackbones);
    }

    #[test]
    fn backbone_sees_all_tokens() {
        let vlm = tiny_vlm();
        let batch = BatchWorkload::new()
            .with(Modality::Text, ModalityWorkload::new(6000, 1))
            .with(Modality::Image, ModalityWorkload::new(2000, 10));
        let workloads = vlm.module_workloads(&batch);
        let (_, vit_wl) = workloads[0];
        let (_, lm_wl) = workloads[1];
        assert_eq!(vit_wl.tokens, 2000);
        assert_eq!(lm_wl.tokens, 8000);
    }

    #[test]
    fn lookup_by_name() {
        let vlm = tiny_vlm();
        assert!(vlm.module_by_name("vit").is_ok());
        assert!(matches!(
            vlm.module_by_name("nonexistent"),
            Err(ModelError::UnknownModule { .. })
        ));
    }

    #[test]
    fn backbone_and_encoders_are_identified() {
        let vlm = tiny_vlm();
        assert_eq!(vlm.backbone().unwrap().name(), "lm");
        assert_eq!(vlm.backbone_id(), Some(ModuleId(1)));
        assert_eq!(vlm.encoders().count(), 1);
        assert_eq!(vlm.decoders().count(), 0);
    }

    #[test]
    fn model_flops_increase_with_images() {
        let vlm = tiny_vlm();
        let few = BatchWorkload::new()
            .with(Modality::Text, ModalityWorkload::new(8000, 1))
            .with(Modality::Image, ModalityWorkload::new(169, 1));
        let many = BatchWorkload::new()
            .with(Modality::Text, ModalityWorkload::new(8000, 1))
            .with(Modality::Image, ModalityWorkload::new(169 * 40, 40));
        assert!(vlm.model_flops(&many) > vlm.model_flops(&few));
    }
}
