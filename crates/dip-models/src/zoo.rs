//! The model zoo used throughout the paper's evaluation.
//!
//! Architectures follow Table 2 (ViT 5B/22B, Llama3 8B, Qwen2 32B/72B,
//! DiT 5B/30B), the combinations follow Table 3 (VLM-S/M/L, T2V-S/L) and
//! Table 6 (VLM-XL, T2V-XL), and the motivation models of §2 (unimodal 7B LM,
//! ViT 2B + LM 5B, and the 37B VLM) are included as well.

use crate::{
    AdapterLayer, EmbeddingLayer, LayerSpec, LmHeadLayer, LmmSpec, Modality, ModalityModule,
    ModuleRole, PatchEmbedLayer, TransformerKind, TransformerLayer,
};
use serde::{Deserialize, Serialize};

/// Llama 3 vocabulary size.
pub const LLAMA3_VOCAB: usize = 128_256;
/// Qwen2 vocabulary size.
pub const QWEN2_VOCAB: usize = 152_064;
/// GPT-3 vocabulary size.
pub const GPT3_VOCAB: usize = 50_257;
/// ViT patch size used by the Qwen2-VL-style encoder in the paper (§7.1).
pub const VIT_PATCH_SIZE: usize = 14;
/// Patch tokens produced per 728-px image after spatial merging (§7.1).
pub const TOKENS_PER_IMAGE: u64 = 169;
/// Context length used for packing VLM microbatches (§7.1).
pub const VLM_CONTEXT_LENGTH: u64 = 8192;
/// Maximum images per packed 8192-token sequence (`⌊8192/169⌋`, §7.1).
pub const MAX_IMAGES_PER_SEQUENCE: u64 = VLM_CONTEXT_LENGTH / TOKENS_PER_IMAGE;

/// Builds a stack of identical transformer layers.
fn transformer_stack(
    count: usize,
    embed_dim: usize,
    ffn_hidden_dim: usize,
    num_heads: usize,
    num_kv_groups: usize,
    kind: TransformerKind,
) -> Vec<LayerSpec> {
    let layer = TransformerLayer::new(embed_dim, ffn_hidden_dim, num_heads, num_kv_groups, kind)
        .expect("zoo layer dimensions are valid");
    vec![LayerSpec::Transformer(layer); count]
}

/// A ViT image encoder with a leading patch embedding.
fn vit_module(
    name: &str,
    layers: usize,
    embed_dim: usize,
    ffn_hidden_dim: usize,
    heads: usize,
) -> ModalityModule {
    let mut stack = vec![LayerSpec::PatchEmbed(PatchEmbedLayer {
        embed_dim,
        patch_size: VIT_PATCH_SIZE,
        in_channels: 3,
    })];
    stack.extend(transformer_stack(
        layers,
        embed_dim,
        ffn_hidden_dim,
        heads,
        heads,
        TransformerKind::VitEncoder,
    ));
    ModalityModule::new(name, Modality::Image, ModuleRole::Encoder, stack)
        .expect("non-empty ViT module")
}

/// A dense causal LLM with embedding and output head.
#[allow(clippy::too_many_arguments)]
fn llm_module(
    name: &str,
    role: ModuleRole,
    modality: Modality,
    layers: usize,
    embed_dim: usize,
    ffn_hidden_dim: usize,
    heads: usize,
    kv_groups: usize,
    vocab: usize,
    kind: TransformerKind,
) -> ModalityModule {
    let mut stack = vec![LayerSpec::Embedding(EmbeddingLayer {
        vocab_size: vocab,
        embed_dim,
    })];
    stack.extend(transformer_stack(
        layers,
        embed_dim,
        ffn_hidden_dim,
        heads,
        kv_groups,
        kind,
    ));
    stack.push(LayerSpec::LmHead(LmHeadLayer {
        vocab_size: vocab,
        embed_dim,
    }));
    ModalityModule::new(name, modality, role, stack).expect("non-empty LLM module")
}

/// A DiT video decoder.
fn dit_module(
    name: &str,
    layers: usize,
    embed_dim: usize,
    ffn_hidden_dim: usize,
    heads: usize,
) -> ModalityModule {
    let mut stack = vec![LayerSpec::PatchEmbed(PatchEmbedLayer {
        embed_dim,
        patch_size: 2,
        in_channels: 16,
    })];
    stack.extend(transformer_stack(
        layers,
        embed_dim,
        ffn_hidden_dim,
        heads,
        heads,
        TransformerKind::DitBlock,
    ));
    ModalityModule::new(name, Modality::Video, ModuleRole::Decoder, stack)
        .expect("non-empty DiT module")
}

/// A lightweight modality adapter projecting from `in_dim` to `out_dim`.
fn adapter_module(name: &str, modality: Modality, in_dim: usize, out_dim: usize) -> ModalityModule {
    let layer = LayerSpec::Adapter(AdapterLayer {
        in_dim,
        out_dim,
        hidden_dim: out_dim,
    });
    ModalityModule::new(name, modality, ModuleRole::Adapter, vec![layer])
        .expect("non-empty adapter module")
}

// ---------------------------------------------------------------------------
// Table 2 architectures
// ---------------------------------------------------------------------------

/// ViT 5B image encoder (63 layers, d=1792, ffn=15360, 16 heads).
pub fn vit_5b() -> ModalityModule {
    vit_module("vit-5b", 63, 1792, 15360, 16)
}

/// ViT 22B image encoder (48 layers, d=6144, ffn=24576, 48 heads).
pub fn vit_22b() -> ModalityModule {
    vit_module("vit-22b", 48, 6144, 24576, 48)
}

/// Llama3 8B language model (32 layers, d=4096, ffn=14336, 32 heads, 8 KV groups).
pub fn llama3_8b(role: ModuleRole) -> ModalityModule {
    llm_module(
        "llama3-8b",
        role,
        Modality::Text,
        32,
        4096,
        14336,
        32,
        8,
        LLAMA3_VOCAB,
        TransformerKind::CausalLm,
    )
}

/// Qwen2 32B language model (64 layers, d=5120, ffn=27648, 40 heads, 8 KV groups).
pub fn qwen2_32b(role: ModuleRole) -> ModalityModule {
    llm_module(
        "qwen2-32b",
        role,
        Modality::Text,
        64,
        5120,
        27648,
        40,
        8,
        QWEN2_VOCAB,
        TransformerKind::CausalLm,
    )
}

/// Qwen2 72B language model (80 layers, d=8192, ffn=29568, 64 heads, 8 KV groups).
pub fn qwen2_72b(role: ModuleRole) -> ModalityModule {
    llm_module(
        "qwen2-72b",
        role,
        Modality::Text,
        80,
        8192,
        29568,
        64,
        8,
        QWEN2_VOCAB,
        TransformerKind::CausalLm,
    )
}

/// GPT 175B language model backbone (96 layers, d=12288, 96 heads), Table 6.
pub fn gpt_175b() -> ModalityModule {
    llm_module(
        "gpt-175b",
        ModuleRole::Backbone,
        Modality::Text,
        96,
        12288,
        49152,
        96,
        96,
        GPT3_VOCAB,
        TransformerKind::GptBlock,
    )
}

/// DiT 5B video decoder (28 layers, d=3584, ffn=10240, 28 heads).
pub fn dit_5b() -> ModalityModule {
    dit_module("dit-5b", 28, 3584, 10240, 28)
}

/// DiT 30B video decoder (48 layers, d=6144, ffn=24576, 48 heads).
pub fn dit_30b() -> ModalityModule {
    dit_module("dit-30b", 48, 6144, 24576, 48)
}

// ---------------------------------------------------------------------------
// Motivation models (§2, Table 1)
// ---------------------------------------------------------------------------

/// Unimodal 7B language model used in Table 1.
pub fn lm_7b() -> LmmSpec {
    let lm = llm_module(
        "lm-7b",
        ModuleRole::Backbone,
        Modality::Text,
        32,
        4096,
        11008,
        32,
        32,
        32_000,
        TransformerKind::CausalLm,
    );
    LmmSpec::builder("LM-7B")
        .module_over_all_tokens(lm)
        .build()
        .expect("valid LM-7B spec")
}

/// ViT 2B + LM 5B vision-language model used in Table 1 and §3.1.
pub fn vlm_2b_5b() -> LmmSpec {
    let vit = vit_module("vit-2b", 48, 1792, 7168, 16);
    let adapter = adapter_module("vit2lm-adapter", Modality::Image, 1792, 3584);
    let lm = llm_module(
        "lm-5b",
        ModuleRole::Backbone,
        Modality::Text,
        32,
        3584,
        9472,
        28,
        28,
        32_000,
        TransformerKind::CausalLm,
    );
    LmmSpec::builder("VLM-2B+5B")
        .module(vit)
        .module(adapter)
        .module_over_all_tokens(lm)
        .build()
        .expect("valid VLM-2B+5B spec")
}

/// The 37B VLM of §2.3 (5B ViT with 64 layers + 32B language model, 64 layers).
pub fn vlm_37b() -> LmmSpec {
    let vit = vit_module("vit-5b-64l", 64, 1792, 15360, 16);
    let adapter = adapter_module("vit2lm-adapter", Modality::Image, 1792, 5120);
    let lm = qwen2_32b(ModuleRole::Backbone);
    LmmSpec::builder("VLM-37B")
        .module(vit)
        .module(adapter)
        .module_over_all_tokens(lm)
        .build()
        .expect("valid VLM-37B spec")
}

// ---------------------------------------------------------------------------
// Table 3 combinations
// ---------------------------------------------------------------------------

/// VLM-S: ViT 5B + Llama3 8B.
pub fn vlm_s() -> LmmSpec {
    let vit = vit_5b();
    let adapter = adapter_module("vit2lm-adapter", Modality::Image, 1792, 4096);
    LmmSpec::builder("VLM-S")
        .module(vit)
        .module(adapter)
        .module_over_all_tokens(llama3_8b(ModuleRole::Backbone))
        .build()
        .expect("valid VLM-S spec")
}

/// VLM-M: ViT 5B + Qwen2 32B.
pub fn vlm_m() -> LmmSpec {
    let vit = vit_5b();
    let adapter = adapter_module("vit2lm-adapter", Modality::Image, 1792, 5120);
    LmmSpec::builder("VLM-M")
        .module(vit)
        .module(adapter)
        .module_over_all_tokens(qwen2_32b(ModuleRole::Backbone))
        .build()
        .expect("valid VLM-M spec")
}

/// VLM-L: ViT 22B + Qwen2 72B.
pub fn vlm_l() -> LmmSpec {
    let vit = vit_22b();
    let adapter = adapter_module("vit2lm-adapter", Modality::Image, 6144, 8192);
    LmmSpec::builder("VLM-L")
        .module(vit)
        .module(adapter)
        .module_over_all_tokens(qwen2_72b(ModuleRole::Backbone))
        .build()
        .expect("valid VLM-L spec")
}

/// T2V-S: Llama3 8B text encoder + DiT 5B video decoder.
pub fn t2v_s() -> LmmSpec {
    let lm = llama3_8b(ModuleRole::Encoder);
    let adapter = adapter_module("lm2dit-adapter", Modality::Text, 4096, 3584);
    LmmSpec::builder("T2V-S")
        .module(lm)
        .module(adapter)
        .module(dit_5b())
        .build()
        .expect("valid T2V-S spec")
}

/// T2V-L: Qwen2 32B text encoder + DiT 30B video decoder.
pub fn t2v_l() -> LmmSpec {
    let lm = qwen2_32b(ModuleRole::Encoder);
    let adapter = adapter_module("lm2dit-adapter", Modality::Text, 5120, 6144);
    LmmSpec::builder("T2V-L")
        .module(lm)
        .module(adapter)
        .module(dit_30b())
        .build()
        .expect("valid T2V-L spec")
}

// ---------------------------------------------------------------------------
// Table 6 extra-large combinations
// ---------------------------------------------------------------------------

/// VLM-XL: ViT 22B + GPT 175B (large-scale simulation, Table 6).
pub fn vlm_xl() -> LmmSpec {
    let vit = vit_22b();
    let adapter = adapter_module("vit2lm-adapter", Modality::Image, 6144, 12288);
    LmmSpec::builder("VLM-XL")
        .module(vit)
        .module(adapter)
        .module_over_all_tokens(gpt_175b())
        .build()
        .expect("valid VLM-XL spec")
}

/// T2V-XL: Qwen2 72B text encoder + DiT 30B video decoder (Table 6).
pub fn t2v_xl() -> LmmSpec {
    let lm = qwen2_72b(ModuleRole::Encoder);
    let adapter = adapter_module("lm2dit-adapter", Modality::Text, 8192, 6144);
    LmmSpec::builder("T2V-XL")
        .module(lm)
        .module(adapter)
        .module(dit_30b())
        .build()
        .expect("valid T2V-XL spec")
}

// ---------------------------------------------------------------------------
// Evaluation setups (model + parallelism), Tables 3 and 6
// ---------------------------------------------------------------------------

/// A model combination with the parallelism configuration the paper uses.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelSetup {
    /// Display name ("VLM-S", "T2V-XL-3k", ...).
    pub name: String,
    /// The model specification.
    pub model: LmmSpec,
    /// Tensor-parallel size.
    pub tp: usize,
    /// Pipeline-parallel size.
    pub pp: usize,
    /// Data-parallel size.
    pub dp: usize,
}

impl ModelSetup {
    /// Total number of GPUs (`tp * pp * dp`).
    pub fn num_gpus(&self) -> usize {
        self.tp * self.pp * self.dp
    }
}

/// The five evaluation setups of Table 3.
pub fn table3_setups() -> Vec<ModelSetup> {
    vec![
        ModelSetup {
            name: "VLM-S".into(),
            model: vlm_s(),
            tp: 4,
            pp: 4,
            dp: 1,
        },
        ModelSetup {
            name: "VLM-M".into(),
            model: vlm_m(),
            tp: 8,
            pp: 4,
            dp: 1,
        },
        ModelSetup {
            name: "VLM-L".into(),
            model: vlm_l(),
            tp: 8,
            pp: 8,
            dp: 1,
        },
        ModelSetup {
            name: "T2V-S".into(),
            model: t2v_s(),
            tp: 4,
            pp: 4,
            dp: 1,
        },
        ModelSetup {
            name: "T2V-L".into(),
            model: t2v_l(),
            tp: 8,
            pp: 8,
            dp: 1,
        },
    ]
}

/// The four large-scale simulation setups of Table 6.
pub fn table6_setups() -> Vec<ModelSetup> {
    vec![
        ModelSetup {
            name: "VLM-XL-8k".into(),
            model: vlm_xl(),
            tp: 8,
            pp: 8,
            dp: 128,
        },
        ModelSetup {
            name: "VLM-XL-16k".into(),
            model: vlm_xl(),
            tp: 8,
            pp: 16,
            dp: 128,
        },
        ModelSetup {
            name: "T2V-XL-3k".into(),
            model: t2v_xl(),
            tp: 8,
            pp: 4,
            dp: 96,
        },
        ModelSetup {
            name: "T2V-XL-6k".into(),
            model: t2v_xl(),
            tp: 8,
            pp: 8,
            dp: 96,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_params_within(actual_billions: f64, expected_billions: f64, tolerance: f64) {
        let lo = expected_billions * (1.0 - tolerance);
        let hi = expected_billions * (1.0 + tolerance);
        assert!(
            (lo..=hi).contains(&actual_billions),
            "expected ~{expected_billions}B, got {actual_billions:.2}B"
        );
    }

    #[test]
    fn table2_param_counts_are_close_to_nominal() {
        assert_params_within(vit_5b().param_billions(), 5.0, 0.25);
        assert_params_within(vit_22b().param_billions(), 22.0, 0.15);
        assert_params_within(llama3_8b(ModuleRole::Backbone).param_billions(), 8.0, 0.15);
        assert_params_within(qwen2_32b(ModuleRole::Backbone).param_billions(), 32.0, 0.20);
        assert_params_within(qwen2_72b(ModuleRole::Backbone).param_billions(), 72.0, 0.15);
        assert_params_within(dit_5b().param_billions(), 5.0, 0.25);
        assert_params_within(dit_30b().param_billions(), 30.0, 0.15);
        assert_params_within(gpt_175b().param_billions(), 175.0, 0.10);
    }

    #[test]
    fn table3_combination_sizes_span_12b_to_94b() {
        // Paper: five LMMs ranging from 12B to 94B parameters.
        let sizes: Vec<f64> = table3_setups()
            .iter()
            .map(|s| s.model.param_billions())
            .collect();
        let min = sizes.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = sizes.iter().cloned().fold(0.0_f64, f64::max);
        assert!(min > 10.0 && min < 16.0, "smallest model {min:.1}B");
        assert!(max > 85.0 && max < 105.0, "largest model {max:.1}B");
    }

    #[test]
    fn table3_gpu_counts_match_paper() {
        let setups = table3_setups();
        let gpus: Vec<usize> = setups.iter().map(|s| s.num_gpus()).collect();
        assert_eq!(gpus, vec![16, 32, 64, 16, 64]);
    }

    #[test]
    fn table6_gpu_counts_match_paper() {
        let setups = table6_setups();
        let gpus: Vec<usize> = setups.iter().map(|s| s.num_gpus()).collect();
        assert_eq!(gpus, vec![8192, 16384, 3072, 6144]);
    }

    #[test]
    fn vlm_specs_have_encoder_adapter_backbone() {
        for spec in [vlm_s(), vlm_m(), vlm_l(), vlm_xl()] {
            assert_eq!(spec.num_modules(), 3, "{}", spec.name());
            assert!(spec.backbone().is_some(), "{}", spec.name());
            assert_eq!(spec.encoders().count(), 1, "{}", spec.name());
        }
    }

    #[test]
    fn t2v_specs_have_text_encoder_and_video_decoder() {
        for spec in [t2v_s(), t2v_l(), t2v_xl()] {
            assert_eq!(spec.encoders().count(), 1, "{}", spec.name());
            assert_eq!(spec.decoders().count(), 1, "{}", spec.name());
            assert_eq!(
                spec.decoders().next().unwrap().1.modality(),
                Modality::Image.max(Modality::Video)
            );
        }
    }

    #[test]
    fn motivation_models_have_expected_sizes() {
        assert_params_within(lm_7b().param_billions(), 7.0, 0.15);
        assert_params_within(vlm_2b_5b().param_billions(), 7.0, 0.20);
        assert_params_within(vlm_37b().param_billions(), 37.0, 0.15);
    }

    #[test]
    fn max_images_per_sequence_is_48() {
        assert_eq!(MAX_IMAGES_PER_SEQUENCE, 48);
    }
}
