//! Model substrate for the DIP reproduction.
//!
//! This crate describes large multimodal model (LMM) architectures at the
//! granularity the DIP planner needs: modality modules (encoders, backbones,
//! decoders and adapters) composed of layers, together with an analytical
//! cost model that maps a layer plus a [`ModalityWorkload`] to floating point
//! operations, parameter bytes and activation bytes.
//!
//! The crate also ships the "model zoo" used throughout the paper's
//! evaluation: every architecture of Table 2, every combination of Table 3
//! (VLM-S/M/L, T2V-S/L) and the extra-large combinations of Table 6
//! (VLM-XL, T2V-XL), plus the 7B/ViT2B+LM5B pair used in the motivation
//! (Table 1) and the 37B VLM of §2.3.
//!
//! # Example
//!
//! ```
//! use dip_models::{zoo, ModalityWorkload};
//!
//! let vlm = zoo::vlm_s();
//! assert_eq!(vlm.modules().len(), 3); // ViT encoder, adapter, LM backbone
//!
//! // Cost of running the language backbone over 8192 text tokens.
//! let backbone = vlm.backbone().expect("VLM-S has a backbone");
//! let wl = ModalityWorkload::from_tokens(8192);
//! let cost = backbone.cost(&wl, 1);
//! assert!(cost.fwd_flops > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod canonical;
mod cost;
mod error;
mod layer;
mod lmm;
mod modality;
mod module;
mod workload;

pub mod json;
pub mod zoo;

pub use canonical::{BucketingConfig, CanonicalSignature};
pub use cost::{LayerCost, StagePairCost};
pub use error::ModelError;
pub use layer::{
    AdapterLayer, EmbeddingLayer, LayerKind, LayerSpec, LmHeadLayer, PatchEmbedLayer,
    TransformerKind, TransformerLayer,
};
pub use lmm::{LmmSpec, LmmSpecBuilder, ModuleId, WorkloadSource};
pub use modality::{Modality, ModuleRole};
pub use module::ModalityModule;
pub use workload::{BatchWorkload, ModalityWorkload};

/// Bytes per element for bf16 training (weights and activations).
pub const BF16_BYTES: u64 = 2;
/// Bytes per element for fp32 master weights / optimizer states.
pub const FP32_BYTES: u64 = 4;
/// Bytes of optimizer state per parameter for Adam with fp32 master weights
/// (fp32 master copy + two fp32 moments).
pub const ADAM_STATE_BYTES_PER_PARAM: u64 = 3 * FP32_BYTES;
