use crate::{LayerCost, LayerSpec, Modality, ModalityWorkload, ModelError, ModuleRole, BF16_BYTES};
use serde::{Deserialize, Serialize};

/// A modality module of an LMM: an encoder, backbone, decoder or adapter
/// made of a stack of layers that all process the same modality stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModalityModule {
    name: String,
    modality: Modality,
    role: ModuleRole,
    layers: Vec<LayerSpec>,
}

impl ModalityModule {
    /// Creates a new module.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyModule`] if `layers` is empty.
    pub fn new(
        name: impl Into<String>,
        modality: Modality,
        role: ModuleRole,
        layers: Vec<LayerSpec>,
    ) -> Result<Self, ModelError> {
        let name = name.into();
        if layers.is_empty() {
            return Err(ModelError::EmptyModule { module: name });
        }
        Ok(Self {
            name,
            modality,
            role,
            layers,
        })
    }

    /// The module's name (e.g. `"vit-5b"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The modality this module processes.
    pub fn modality(&self) -> Modality {
        self.modality
    }

    /// The module's role within the LMM.
    pub fn role(&self) -> ModuleRole {
        self.role
    }

    /// The module's layers, in execution order.
    pub fn layers(&self) -> &[LayerSpec] {
        &self.layers
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total parameter count of the module.
    pub fn param_count(&self) -> u64 {
        self.layers.iter().map(LayerSpec::param_count).sum()
    }

    /// Total parameter count expressed in billions, handy for reports.
    pub fn param_billions(&self) -> f64 {
        self.param_count() as f64 / 1e9
    }

    /// Analytical cost of running the whole module over `workload` with a
    /// tensor-parallel group of size `tp` (per-GPU cost).
    pub fn cost(&self, workload: &ModalityWorkload, tp: usize) -> LayerCost {
        self.cost_of_layers(0..self.layers.len(), workload, tp)
    }

    /// Analytical per-GPU cost of a contiguous slice of layers
    /// (`range` indexes into [`Self::layers`]).
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds.
    pub fn cost_of_layers(
        &self,
        range: std::ops::Range<usize>,
        workload: &ModalityWorkload,
        tp: usize,
    ) -> LayerCost {
        let tp = tp.max(1) as f64;
        let layers = &self.layers[range];
        let mut total = LayerCost::default();
        for layer in layers {
            let params = layer.param_count() as f64 / tp;
            let param_bytes = (params * BF16_BYTES as f64) as u64;
            let fwd = layer.fwd_flops(workload) / tp;
            let bwd = layer.bwd_flops(workload) / tp;
            let act = (layer.activation_bytes(workload) as f64 / tp) as u64;
            let fwd_mem = (layer.fwd_mem_bytes(workload) as f64 / tp) as u64;
            // Megatron-style TP: two all-reduces (attention out-proj and MLP
            // down-proj) of the full hidden activation per layer per pass.
            let tp_comm = if tp > 1.0 {
                self.tp_allreduce_bytes(layer, workload)
            } else {
                0
            };
            total += LayerCost {
                fwd_flops: fwd,
                bwd_flops: bwd,
                param_bytes,
                grad_bytes: param_bytes,
                optimizer_bytes: (params * crate::ADAM_STATE_BYTES_PER_PARAM as f64) as u64,
                activation_bytes: act,
                fwd_mem_bytes: fwd_mem,
                tp_comm_bytes: tp_comm,
            };
        }
        total
    }

    fn tp_allreduce_bytes(&self, layer: &LayerSpec, workload: &ModalityWorkload) -> u64 {
        match layer {
            LayerSpec::Transformer(t) => {
                // Two all-reduces of (tokens x embed_dim) bf16 activations.
                2 * workload.tokens * t.embed_dim as u64 * BF16_BYTES
            }
            LayerSpec::LmHead(h) => workload.tokens * h.embed_dim as u64 * BF16_BYTES,
            LayerSpec::Adapter(a) => workload.tokens * a.out_dim as u64 * BF16_BYTES,
            _ => 0,
        }
    }

    /// The per-layer forward FLOPs of a "representative" (median-position)
    /// layer, used for quick load estimates.
    pub fn representative_layer_fwd_flops(&self, workload: &ModalityWorkload) -> f64 {
        let idx = self.layers.len() / 2;
        self.layers[idx].fwd_flops(workload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TransformerKind, TransformerLayer};

    fn small_module() -> ModalityModule {
        let layer = LayerSpec::Transformer(
            TransformerLayer::new(1024, 4096, 16, 16, TransformerKind::VitEncoder).unwrap(),
        );
        ModalityModule::new(
            "vit-test",
            Modality::Image,
            ModuleRole::Encoder,
            vec![layer; 4],
        )
        .unwrap()
    }

    #[test]
    fn rejects_empty_modules() {
        let err = ModalityModule::new("x", Modality::Text, ModuleRole::Backbone, vec![]);
        assert_eq!(
            err.unwrap_err(),
            ModelError::EmptyModule { module: "x".into() }
        );
    }

    #[test]
    fn module_cost_is_sum_of_layer_costs() {
        let m = small_module();
        let wl = ModalityWorkload::from_tokens(1000);
        let whole = m.cost(&wl, 1);
        let first_half = m.cost_of_layers(0..2, &wl, 1);
        let second_half = m.cost_of_layers(2..4, &wl, 1);
        let stitched = first_half + second_half;
        assert!((whole.fwd_flops - stitched.fwd_flops).abs() < 1.0);
        assert_eq!(whole.param_bytes, stitched.param_bytes);
    }

    #[test]
    fn tensor_parallel_divides_compute_and_adds_communication() {
        let m = small_module();
        let wl = ModalityWorkload::from_tokens(1000);
        let tp1 = m.cost(&wl, 1);
        let tp4 = m.cost(&wl, 4);
        assert!(tp4.fwd_flops < tp1.fwd_flops / 3.5);
        assert_eq!(tp1.tp_comm_bytes, 0);
        assert!(tp4.tp_comm_bytes > 0);
    }

    #[test]
    fn param_count_matches_layers() {
        let m = small_module();
        let per_layer = m.layers()[0].param_count();
        assert_eq!(m.param_count(), 4 * per_layer);
        assert!(m.param_billions() > 0.0);
    }
}
