//! Canonical (bucketed) workload signatures for fuzzy plan reuse.
//!
//! Exact [`BatchWorkload::signature`](crate::BatchWorkload::signature) keys
//! recognise *identical* shapes only; real dynamic traffic produces
//! near-identical shapes that differ by a handful of tokens and would miss
//! an exact-keyed plan cache. A [`CanonicalSignature`] quantises the
//! sequence-length-like workload dimensions (tokens, sequence counts) into
//! configurable buckets so that every workload inside a bucket maps to the
//! same key and a plan computed for one in-bucket shape can be *reused* for
//! another — the planner layer re-prices the reused plan against the real
//! shape, so the reuse is bounded-regret rather than approximate.
//!
//! The microbatch count and modality set are folded exactly by default:
//! plans are structurally tied to both (the stage graph has one work item
//! per `(segment, microbatch)` block), so bucketing them would make reuse
//! structurally unsound rather than merely suboptimal.

use crate::workload::fnv1a_fold;
use crate::{BatchWorkload, Modality, ModalityWorkload};
use serde::{Deserialize, Serialize};

/// Seed distinguishing canonical signatures from exact workload signatures.
const CANONICAL_SEED: u64 = 0xb0c4_e7ab_u64.wrapping_mul(0x9e37_79b9_7f4a_7c15);

/// How aggressively workload dimensions are quantised before hashing.
///
/// Every dimension uses *bucket index* quantisation: value `v` with bucket
/// width `b` maps to `v / b` (integer division), so `[0, b)`, `[b, 2b)`, …
/// are the buckets. A width of 1 keeps the dimension exact. Wider buckets
/// raise the fuzzy hit rate and the worst-case in-bucket regret together;
/// the regret bound is checked empirically by the `fuzzy_replanning`
/// proptest suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BucketingConfig {
    /// Bucket width for per-modality token counts (1 = exact).
    pub token_bucket: u64,
    /// Bucket width for per-modality sequence counts (1 = exact).
    pub sequence_bucket: u64,
}

impl BucketingConfig {
    /// Exact matching: every bucket has width 1, so the canonical signature
    /// collides exactly when the exact signature does.
    pub fn exact() -> Self {
        Self {
            token_bucket: 1,
            sequence_bucket: 1,
        }
    }

    /// True when no dimension is actually quantised.
    pub fn is_exact(&self) -> bool {
        self.token_bucket <= 1 && self.sequence_bucket <= 1
    }

    /// Bucket index of a token count under this config.
    pub fn token_bin(&self, tokens: u64) -> u64 {
        tokens / self.token_bucket.max(1)
    }

    /// Bucket index of a sequence count under this config.
    pub fn sequence_bin(&self, sequences: u64) -> u64 {
        sequences / self.sequence_bucket.max(1)
    }

    /// The canonical bucket of one modality workload: the pair of bucket
    /// indices that decide fuzzy equality for this modality.
    pub fn bucket_of(&self, workload: &ModalityWorkload) -> (u64, u64) {
        (
            self.token_bin(workload.tokens),
            self.sequence_bin(workload.sequences),
        )
    }
}

impl Default for BucketingConfig {
    /// Moderate default buckets: 512-token and 4-sequence bins. Small
    /// enough that the shapes of the bundled benches stay distinguishable,
    /// wide enough that a ±few-% token jitter around a hot shape lands in
    /// the hot shape's bucket.
    fn default() -> Self {
        Self {
            token_bucket: 512,
            sequence_bucket: 4,
        }
    }
}

/// A quantised, cross-process-stable signature of a workload sequence.
///
/// Two microbatch sequences share a canonical signature exactly when they
/// have the same microbatch count and, per microbatch, the same non-empty
/// modality set with every modality's `(token, sequence)` counts falling in
/// the same [`BucketingConfig`] buckets. The hash is FNV-1a over the bucket
/// indices, so — like the exact signature — it is stable across processes
/// and suitable as a persistent cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CanonicalSignature(u64);

impl CanonicalSignature {
    /// Canonical signature of a microbatch sequence under `config`.
    pub fn of(microbatches: &[BatchWorkload], config: &BucketingConfig) -> Self {
        let mut acc = fnv1a_fold(CANONICAL_SEED, microbatches.len() as u64);
        acc = fnv1a_fold(acc, config.token_bucket.max(1));
        acc = fnv1a_fold(acc, config.sequence_bucket.max(1));
        for batch in microbatches {
            acc = fnv1a_fold(acc, 0x6d6d_6261); // per-microbatch separator
            for (modality, workload) in batch.iter() {
                let index = Modality::ALL
                    .iter()
                    .position(|m| *m == modality)
                    .expect("modality listed in Modality::ALL") as u64;
                let (token_bin, sequence_bin) = config.bucket_of(&workload);
                acc = fnv1a_fold(acc, index);
                acc = fnv1a_fold(acc, token_bin);
                acc = fnv1a_fold(acc, sequence_bin);
            }
        }
        Self(acc)
    }

    /// Folds a topology fingerprint into the signature, so plans for the
    /// same bucketed shape on different clusters never alias.
    pub fn with_topology(self, fingerprint: u64) -> Self {
        Self(fnv1a_fold(self.0, fingerprint))
    }

    /// The raw 64-bit key.
    pub fn as_u64(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn text(tokens: u64, sequences: u64) -> BatchWorkload {
        BatchWorkload::new().with(Modality::Text, ModalityWorkload::new(tokens, sequences))
    }

    #[test]
    fn exact_config_matches_exact_equality() {
        let config = BucketingConfig::exact();
        assert!(config.is_exact());
        let a = CanonicalSignature::of(&[text(1000, 2)], &config);
        let b = CanonicalSignature::of(&[text(1000, 2)], &config);
        let c = CanonicalSignature::of(&[text(1001, 2)], &config);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn in_bucket_neighbours_collide_and_cross_bucket_shapes_do_not() {
        let config = BucketingConfig {
            token_bucket: 512,
            sequence_bucket: 4,
        };
        // 8192 and 8191+ up to 8703 share the [8192, 8704) token bucket.
        let base = CanonicalSignature::of(&[text(8192, 2)], &config);
        assert_eq!(CanonicalSignature::of(&[text(8200, 2)], &config), base);
        assert_eq!(CanonicalSignature::of(&[text(8703, 3)], &config), base);
        assert_ne!(CanonicalSignature::of(&[text(8704, 2)], &config), base);
        assert_ne!(CanonicalSignature::of(&[text(8191, 2)], &config), base);
        assert_ne!(CanonicalSignature::of(&[text(8192, 4)], &config), base);
    }

    #[test]
    fn microbatch_count_and_modality_set_stay_exact() {
        let config = BucketingConfig::default();
        let one = CanonicalSignature::of(&[text(8192, 1)], &config);
        let two = CanonicalSignature::of(&[text(8192, 1), text(8192, 1)], &config);
        assert_ne!(one, two);

        let with_image = BatchWorkload::new()
            .with(Modality::Text, ModalityWorkload::new(8192, 1))
            .with(Modality::Image, ModalityWorkload::new(169, 1));
        assert_ne!(
            CanonicalSignature::of(&[with_image], &config),
            CanonicalSignature::of(&[text(8192, 1)], &config)
        );
    }

    #[test]
    fn bucket_widths_are_part_of_the_key() {
        let narrow = BucketingConfig {
            token_bucket: 64,
            sequence_bucket: 1,
        };
        let wide = BucketingConfig {
            token_bucket: 4096,
            sequence_bucket: 1,
        };
        assert_ne!(
            CanonicalSignature::of(&[text(8192, 1)], &narrow),
            CanonicalSignature::of(&[text(8192, 1)], &wide)
        );
    }

    #[test]
    fn topology_fingerprint_separates_clusters() {
        let config = BucketingConfig::default();
        let sig = CanonicalSignature::of(&[text(8192, 1)], &config);
        assert_ne!(sig.with_topology(1), sig.with_topology(2));
        assert_ne!(sig.with_topology(1), sig);
    }

    proptest! {
        /// Bucketed equality is exactly bucket-index equality: any two
        /// workloads whose per-modality bucket indices agree collide, and
        /// any bucket-index difference separates them.
        #[test]
        fn collision_iff_same_buckets(
            tokens_a in 1u64..100_000,
            tokens_b in 1u64..100_000,
            seqs_a in 1u64..64,
            seqs_b in 1u64..64,
            token_bucket in 1u64..2048,
            sequence_bucket in 1u64..16,
        ) {
            let config = BucketingConfig { token_bucket, sequence_bucket };
            let a = CanonicalSignature::of(&[text(tokens_a, seqs_a)], &config);
            let b = CanonicalSignature::of(&[text(tokens_b, seqs_b)], &config);
            let same_bucket = config.token_bin(tokens_a) == config.token_bin(tokens_b)
                && config.sequence_bin(seqs_a) == config.sequence_bin(seqs_b);
            prop_assert_eq!(a == b, same_bucket);
        }
    }
}
