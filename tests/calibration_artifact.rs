//! Calibration-artifact identity properties: planning through a
//! constants-encoding [`CalibrationArtifact`] must be bit-identical to the
//! uncalibrated path on uniform topologies — through the exact-fingerprint
//! tier *and* the device-kind tier of the fallback chain — while an
//! artifact carrying genuinely different measurements must change the
//! simulated outcome (otherwise calibration would be dead weight).

use dip_core::{DipPlan, DipPlanner, PlanRequest, PlannerConfig, PlanningSession, SessionConfig};
use dip_models::{zoo, BatchWorkload, Modality, ModalityWorkload};
use dip_pipeline::ParallelConfig;
use dip_sim::{
    CalibrationArtifact, CalibrationRegistry, CalibrationSource, ClusterSpec, GpuGeneration,
    GpuSpec,
};
use proptest::prelude::*;
use std::time::Duration;

fn vlm_batch(images: u64) -> BatchWorkload {
    let images = images.min(48);
    BatchWorkload::new()
        .with(
            Modality::Text,
            ModalityWorkload::new(8192 - images * 169, 1),
        )
        .with(Modality::Image, ModalityWorkload::new(images * 169, images))
}

/// An evaluation-bounded (hence deterministic at fixed worker count) planner
/// configuration.
fn deterministic_config() -> PlannerConfig {
    let mut config = PlannerConfig::fast();
    config.search.time_budget = Duration::from_secs(3600);
    config.search.max_evaluations = Some(96);
    config
}

fn assert_plans_bit_identical(a: &DipPlan, b: &DipPlan) {
    assert_eq!(a.graph, b.graph, "stage graphs differ");
    assert_eq!(a.orders, b.orders, "rank orders differ");
    assert_eq!(a.segment_priorities, b.segment_priorities);
    assert_eq!(a.memory_plan, b.memory_plan);
    assert_eq!(a.sub_microbatches, b.sub_microbatches);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A constants-encoding artifact — resolved through the **exact
    /// fingerprint** tier or the **device-kind** tier — rewrites every
    /// device field to its current value, so planning is bit-identical to
    /// the registry-free path on any uniform topology.
    #[test]
    fn constants_artifact_plans_bit_identically_on_uniform_topologies(
        nodes in 2usize..5,
        images_a in 0u64..49,
        images_b in 0u64..49,
    ) {
        let spec = zoo::vlm_s();
        let parallel = ParallelConfig::new(4, 4, 1);
        let topology = ClusterSpec::h800_cluster(nodes).topology();
        let request = PlanRequest::new(vec![vlm_batch(images_a), vlm_batch(images_b)]);

        let session_for = |config: PlannerConfig| {
            PlanningSession::from_planner(
                DipPlanner::on_topology(&spec, parallel, topology.clone(), config),
                SessionConfig::default(),
            )
        };
        let plain = session_for(deterministic_config());

        // Tier 1: an artifact pinned to this very topology's fingerprint.
        let exact_registry = CalibrationRegistry::from_artifact(
            CalibrationArtifact::builtin_for(&topology),
        );
        let exact = session_for(deterministic_config().with_calibration(exact_registry.clone()));
        // Tier 2: a fleet-agnostic artifact matched by device kind.
        let kind_registry =
            CalibrationRegistry::from_artifact(CalibrationArtifact::builtin_defaults());
        let kind = session_for(deterministic_config().with_calibration(kind_registry));

        // The resolution tiers are what we think they are.
        prop_assert_eq!(
            DipPlanner::on_topology(
                &spec,
                parallel,
                topology.clone(),
                deterministic_config().with_calibration(exact_registry),
            )
            .calibration_source(),
            CalibrationSource::Exact
        );

        let a = plain.plan(&request).unwrap();
        let b = exact.plan(&request).unwrap();
        let c = kind.plan(&request).unwrap();
        prop_assert_eq!(a.signature, b.signature);
        prop_assert_eq!(a.signature, c.signature);
        assert_plans_bit_identical(&a.plan, &b.plan);
        assert_plans_bit_identical(&a.plan, &c.plan);

        let ta = plain.simulate(&a.plan).unwrap().metrics.iteration_time_s;
        let tb = exact.simulate(&b.plan).unwrap().metrics.iteration_time_s;
        let tc = kind.simulate(&c.plan).unwrap().metrics.iteration_time_s;
        prop_assert_eq!(ta.to_bits(), tb.to_bits());
        prop_assert_eq!(ta.to_bits(), tc.to_bits());
    }

    /// The artifact survives its JSON serialization without perturbing the
    /// identity: plan through `from_json(to_json(artifact))` and the bits
    /// still match (this is what actually happens in production, where the
    /// registry is loaded from the committed file).
    #[test]
    fn json_round_tripped_artifact_preserves_bit_identity(
        nodes in 2usize..4,
        images in 0u64..49,
    ) {
        let spec = zoo::vlm_s();
        let parallel = ParallelConfig::new(4, 4, 1);
        let topology = ClusterSpec::h800_cluster(nodes).topology();
        let request = PlanRequest::new(vec![vlm_batch(images)]);

        let artifact = CalibrationArtifact::builtin_for(&topology);
        let reloaded = CalibrationArtifact::from_json(&artifact.to_json()).unwrap();
        prop_assert_eq!(&reloaded, &artifact);

        let direct = PlanningSession::from_planner(
            DipPlanner::on_topology(
                &spec,
                parallel,
                topology.clone(),
                deterministic_config()
                    .with_calibration(CalibrationRegistry::from_artifact(artifact)),
            ),
            SessionConfig::default(),
        );
        let via_json = PlanningSession::from_planner(
            DipPlanner::on_topology(
                &spec,
                parallel,
                topology,
                deterministic_config()
                    .with_calibration(CalibrationRegistry::from_artifact(reloaded)),
            ),
            SessionConfig::default(),
        );
        let a = direct.plan(&request).unwrap();
        let b = via_json.plan(&request).unwrap();
        assert_plans_bit_identical(&a.plan, &b.plan);
    }
}

/// An artifact carrying *different* measurements must actually change the
/// simulation — the witness that the registry is wired through to pricing
/// and the identity above is not vacuous.
#[test]
fn measured_artifact_changes_the_simulated_outcome() {
    let spec = zoo::vlm_s();
    let parallel = ParallelConfig::new(4, 4, 1);
    let topology = ClusterSpec::h800_cluster(2).topology();
    let request = PlanRequest::new(vec![vlm_batch(10)]);

    let mut artifact = CalibrationArtifact::builtin_for(&topology);
    let h800_key = GpuSpec::preset(GpuGeneration::H800).device_key();
    let entry = artifact
        .devices
        .iter_mut()
        .find(|d| d.device_key == h800_key)
        .expect("H800 entry");
    // "Measured": this fleet only sustains half the spec-sheet FLOP/s.
    entry.peak_flops *= 0.5;

    let plain = PlanningSession::from_planner(
        DipPlanner::on_topology(&spec, parallel, topology.clone(), deterministic_config()),
        SessionConfig::default(),
    );
    let planner = DipPlanner::on_topology(
        &spec,
        parallel,
        topology,
        deterministic_config().with_calibration(CalibrationRegistry::from_artifact(artifact)),
    );
    assert_eq!(planner.calibration_source(), CalibrationSource::Exact);
    let calibrated = PlanningSession::from_planner(planner, SessionConfig::default());

    let a = plain.plan(&request).unwrap();
    let b = calibrated.plan(&request).unwrap();
    let ta = plain.simulate(&a.plan).unwrap().metrics.iteration_time_s;
    let tb = calibrated
        .simulate(&b.plan)
        .unwrap()
        .metrics
        .iteration_time_s;
    assert!(
        tb > ta,
        "halving sustained compute must slow the simulated iteration ({ta} vs {tb})"
    );
    // The rewritten devices also re-key the plan cache: the two sessions
    // must never share cache entries.
    assert_ne!(a.plan.topology_fingerprint, b.plan.topology_fingerprint);
}
