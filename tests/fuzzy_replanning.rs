//! Properties of the fuzzy plan-reuse tier: delta-replanned plans stay
//! within a bounded simulated regret of fresh full plans on in-bucket
//! neighbour shapes, a zero delta budget degrades to verbatim anchor
//! adoption, and a fixed-seed Zipfian shape stream replays bit-identically
//! at any search-worker count — the guarantees the fig8b `zipf.*` CI gate
//! metrics rely on.

use dip_bench::{vlm_batch_jittered, zipf_request_stream};
use dip_core::{
    BucketingConfig, DipPlan, PlanRequest, PlanTier, PlannerConfig, PlanningSession, SessionConfig,
};
use dip_models::zoo;
use dip_pipeline::ParallelConfig;
use dip_sim::ClusterSpec;
use proptest::prelude::*;
use std::time::Duration;

/// The regret bound the fuzzy tier is held to: a delta-replanned plan's
/// simulated iteration time may exceed a fresh full plan's by at most 10%.
/// The fig8b Zipf section gates the same bound (`zipf.regret_ok`).
const REGRET_EPSILON: f64 = 0.10;

/// A planner configuration with a pure virtual-time budget, so plans are a
/// function of (seed, shape) only — never of wall clocks or worker counts.
fn time_budgeted_config(workers: usize, budget_ms: u64, seed: u64) -> PlannerConfig {
    let mut config = PlannerConfig::default().with_num_threads(1);
    config.search.workers = workers;
    config.search.time_budget = Duration::from_millis(budget_ms);
    config.search.max_evaluations = None;
    config.search.streams = 4;
    config.search.seed = seed;
    config
}

fn session<'a>(
    spec: &'a dip_models::LmmSpec,
    cluster: &'a ClusterSpec,
    planner: PlannerConfig,
    config: SessionConfig,
) -> PlanningSession<'a> {
    PlanningSession::with_config(spec, ParallelConfig::new(4, 4, 1), cluster, planner, config)
}

fn assert_plans_bit_identical(a: &DipPlan, b: &DipPlan, what: &str) {
    assert_eq!(a.graph, b.graph, "{what}: stage graphs differ");
    assert_eq!(a.orders, b.orders, "{what}: rank orders differ");
    assert_eq!(
        a.segment_priorities, b.segment_priorities,
        "{what}: priorities differ"
    );
    assert_eq!(a.memory_plan, b.memory_plan, "{what}: memory plans differ");
    assert_eq!(
        a.sub_microbatches, b.sub_microbatches,
        "{what}: sub-microbatch plans differ"
    );
    assert_eq!(
        a.stats.planned_time_s.to_bits(),
        b.stats.planned_time_s.to_bits(),
        "{what}: planned times differ bit-wise"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The simulated-regret bound of the fuzzy tier: for a random base
    /// shape and a random in-bucket jitter of it, the plan served by delta
    /// replanning simulates to at most (1 + ε) of what a fresh full plan
    /// of the jittered shape achieves. This is the invariant that makes
    /// canonical bucketing safe: fuzzy reuse trades bounded plan quality
    /// for orders-of-magnitude lower planning latency.
    #[test]
    fn delta_replanned_plans_stay_within_bounded_simulated_regret(
        images_a in 2u64..=48,
        images_b in 2u64..=48,
        jitter_a in 0u64..=100,
        jitter_b in 0u64..=100,
        seed in 0u64..=1000,
    ) {
        let spec = zoo::vlm_s();
        let cluster = ClusterSpec::h800_cluster(2);
        let bucketing = BucketingConfig::default();
        let base = PlanRequest::new(vec![
            vlm_batch_jittered(images_a, 0, &bucketing),
            vlm_batch_jittered(images_b, 0, &bucketing),
        ]);
        let neighbour = PlanRequest::new(vec![
            vlm_batch_jittered(images_a, jitter_a, &bucketing),
            vlm_batch_jittered(images_b, jitter_b, &bucketing),
        ]);

        let fuzzy = session(
            &spec,
            &cluster,
            time_budgeted_config(2, 40, seed),
            SessionConfig::fuzzy(),
        );
        let cold = fuzzy.plan(&base).unwrap();
        prop_assert_eq!(cold.tier, PlanTier::Cold);
        let served = fuzzy.plan(&neighbour).unwrap();
        let delta_time = fuzzy
            .simulate(&served.plan)
            .unwrap()
            .metrics
            .iteration_time_s;

        // A fresh, fully-budgeted plan of the *neighbour* shape from a
        // separate cold session is the regret reference.
        let reference = session(
            &spec,
            &cluster,
            time_budgeted_config(2, 40, seed),
            SessionConfig::cold(),
        );
        let fresh = reference.plan(&neighbour).unwrap();
        let fresh_time = reference
            .simulate(&fresh.plan)
            .unwrap()
            .metrics
            .iteration_time_s;

        if served.tier == PlanTier::Fuzzy {
            prop_assert!(
                delta_time <= fresh_time * (1.0 + REGRET_EPSILON),
                "regret {:.4} exceeds ε = {REGRET_EPSILON}: delta {delta_time} vs fresh {fresh_time}",
                delta_time / fresh_time - 1.0,
            );
        } else {
            // The jitter clamped to zero on every microbatch: the
            // neighbour degenerated to an exact revisit of the base.
            prop_assert_eq!(served.tier, PlanTier::Exact);
            prop_assert_eq!(neighbour.signature(), base.signature());
        }
    }
}

/// Fixed seed + fixed Zipf stream ⇒ every tier decision and every served
/// plan is bit-identical at 1, 2, 4 and 8 search workers. Delta replanning
/// inherits the virtual-time determinism of the full search: its tiny
/// budget is an evaluation quota, never a wall clock.
#[test]
fn zipf_replay_is_bit_identical_across_worker_counts() {
    let spec = zoo::vlm_s();
    let cluster = ClusterSpec::h800_cluster(2);
    let bucketing = BucketingConfig::default();
    let stream = zipf_request_stream(24, 6, 3, 2, 1.1, 0x5eed, &bucketing);

    let replay = |workers: usize| -> Vec<(PlanTier, DipPlan)> {
        let session = session(
            &spec,
            &cluster,
            time_budgeted_config(workers, 40, 7),
            SessionConfig::fuzzy(),
        );
        stream
            .iter()
            .map(|request| {
                let outcome = session.plan(request).unwrap();
                (outcome.tier, outcome.plan)
            })
            .collect()
    };

    let baseline = replay(1);
    assert!(
        baseline.iter().any(|(tier, _)| *tier == PlanTier::Fuzzy),
        "the stream must exercise the fuzzy tier"
    );
    for workers in [2usize, 4, 8] {
        let run = replay(workers);
        assert_eq!(run.len(), baseline.len());
        for (i, ((tier_a, plan_a), (tier_b, plan_b))) in baseline.iter().zip(&run).enumerate() {
            assert_eq!(
                tier_a, tier_b,
                "request {i}: tier diverged at {workers} workers"
            );
            assert_plans_bit_identical(
                plan_a,
                plan_b,
                &format!("request {i} at {workers} workers"),
            );
        }
    }
}

/// A zero delta budget degrades fuzzy hits to verbatim anchor adoption:
/// the served plan reuses the anchor's ordering, memory plan and splits
/// unchanged (only the stage graph is re-priced for the requested shape).
#[test]
fn zero_delta_budget_adopts_the_anchor_verbatim() {
    let spec = zoo::vlm_s();
    let cluster = ClusterSpec::h800_cluster(2);
    let bucketing = BucketingConfig::default();
    let mut planner_config = time_budgeted_config(2, 40, 11);
    planner_config.search.delta_budget = Duration::ZERO;
    let session = session(&spec, &cluster, planner_config, SessionConfig::fuzzy());

    let base = PlanRequest::new(vec![
        vlm_batch_jittered(8, 0, &bucketing),
        vlm_batch_jittered(24, 0, &bucketing),
    ]);
    let neighbour = PlanRequest::new(vec![
        vlm_batch_jittered(8, 13, &bucketing),
        vlm_batch_jittered(24, 27, &bucketing),
    ]);
    let cold = session.plan(&base).unwrap();
    let served = session.plan(&neighbour).unwrap();
    assert_eq!(served.tier, PlanTier::Fuzzy);
    assert_eq!(
        served.plan.segment_priorities, cold.plan.segment_priorities,
        "a zero budget must adopt the anchor's ordering verbatim"
    );
    assert_eq!(served.plan.memory_plan, cold.plan.memory_plan);
    assert_eq!(served.plan.sub_microbatches, cold.plan.sub_microbatches);
    let stats = session.stats();
    assert_eq!(stats.fuzzy_hits, 1);
    assert_eq!(
        stats.delta_replans, 0,
        "no search may run under a zero budget"
    );
    // The verbatim plan is still valid and simulable for the new shape.
    session.simulate(&served.plan).unwrap();
}
