//! Property-based invariants that span crates: schedules produced by any
//! scheduler are complete and deadlock-free, simulated time never beats the
//! critical-path lower bound, and DIP's memory optimiser never violates the
//! GPU budget it was given.

use dip_core::{DipPlanner, PlannerConfig};
use dip_models::{zoo, BatchWorkload, Modality, ModalityWorkload};
use dip_pipeline::baselines::{simulate_megatron, simulate_optimus, BaselineContext};
use dip_pipeline::{Direction, ParallelConfig};
use dip_sim::ClusterSpec;
use proptest::prelude::*;

fn vlm_batch(images: u64) -> BatchWorkload {
    let images = images.min(48);
    BatchWorkload::new()
        .with(
            Modality::Text,
            ModalityWorkload::new(8192 - images * 169, 1),
        )
        .with(Modality::Image, ModalityWorkload::new(images * 169, images))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For arbitrary image-count patterns, DIP produces a valid plan whose
    /// simulated time is at least the busiest rank's pure compute time and
    /// whose schedule covers every stage exactly once.
    #[test]
    fn dip_plans_are_complete_and_respect_the_compute_lower_bound(
        counts in prop::collection::vec(0u64..=48, 2..6),
    ) {
        let spec = zoo::vlm_s();
        let cluster = ClusterSpec::h800_cluster(2);
        let parallel = ParallelConfig::new(4, 4, 1);
        let planner = DipPlanner::new(&spec, parallel, &cluster, PlannerConfig::no_opt());
        let batches: Vec<BatchWorkload> = counts.iter().map(|&i| vlm_batch(i)).collect();
        let (plan, outcome) = planner.plan_and_simulate(&batches).unwrap();

        prop_assert_eq!(plan.orders.num_stages(), plan.graph.len());
        // Every stage appears exactly once across ranks.
        let mut seen = vec![false; plan.graph.len()];
        for order in &plan.orders.orders {
            for id in order {
                prop_assert!(!seen[id.0]);
                seen[id.0] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // Simulated time can never beat the busiest rank's total work.
        prop_assert!(outcome.metrics.iteration_time_s + 1e-9 >= plan.graph.critical_rank_time());
        // Forward and backward stages are paired.
        let fwd = plan.graph.items().iter().filter(|i| i.direction == Direction::Forward).count();
        let bwd = plan.graph.items().iter().filter(|i| i.direction == Direction::Backward).count();
        prop_assert_eq!(fwd, bwd);
    }

    /// Baseline simulations never report negative bubbles, impossible MFU or
    /// memory below the static footprint.
    #[test]
    fn baseline_metrics_are_physically_plausible(
        counts in prop::collection::vec(0u64..=48, 2..5),
        seed in 0u64..4,
    ) {
        let spec = zoo::vlm_s();
        let cluster = ClusterSpec::h800_cluster(2);
        let parallel = ParallelConfig::new(4, 4, 1);
        let ctx = BaselineContext::new(&spec, parallel, &cluster);
        let mut batches: Vec<BatchWorkload> = counts.iter().map(|&i| vlm_batch(i)).collect();
        batches.rotate_left((seed % counts.len() as u64) as usize);

        for outcome in [
            simulate_megatron(&ctx, &batches, 1).unwrap(),
            simulate_optimus(&ctx, &batches).unwrap(),
        ] {
            let m = outcome.metrics;
            prop_assert!(m.iteration_time_s > 0.0);
            prop_assert!((0.0..=1.0).contains(&m.bubble_fraction));
            prop_assert!(m.mfu > 0.0 && m.mfu < 1.0);
            prop_assert!(m.peak_memory_bytes >= 0);
        }
    }
}

#[test]
fn planning_is_deterministic_for_identical_inputs() {
    let spec = zoo::vlm_s();
    let cluster = ClusterSpec::h800_cluster(2);
    let parallel = ParallelConfig::new(4, 4, 1);
    let batches: Vec<BatchWorkload> = [8u64, 32, 0, 44].iter().map(|&i| vlm_batch(i)).collect();
    // The no-opt planner is deterministic (no time-budgeted search).
    let run = || {
        let planner = DipPlanner::new(&spec, parallel, &cluster, PlannerConfig::no_opt());
        let (plan, outcome) = planner.plan_and_simulate(&batches).unwrap();
        (plan.orders, outcome.metrics.iteration_time_s)
    };
    let (orders_a, time_a) = run();
    let (orders_b, time_b) = run();
    assert_eq!(orders_a, orders_b);
    assert!((time_a - time_b).abs() < 1e-12);
}
