//! Virtual-time determinism properties: the budgets that bound every
//! planner search are counted (evaluation quotas, ILP node budgets), never
//! clocked, so a fixed-seed, *time-budgeted* `plan()` must be bit-identical
//! across physical worker counts, across repeated runs, and between the
//! serial and parallel memory-optimisation paths — the guarantee the
//! bench-JSON CI gate's determinism metrics rely on.

use dip_core::{
    optimize_memory_detailed, DipPlan, DipPlanner, MemoryOptConfig, PlanRequest, PlannerConfig,
    PlanningSession, SessionConfig,
};
use dip_models::{zoo, BatchWorkload, Modality, ModalityWorkload};
use dip_pipeline::{
    dual_queue, separated_placement, DualQueueConfig, MemoryPlan, MemoryStrategy, ParallelConfig,
    StageGraphBuilder, SubMicrobatchPlan,
};
use dip_sim::{ClusterSpec, ClusterTopology};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::time::Duration;

fn vlm_batch(images: u64) -> BatchWorkload {
    let images = images.min(48);
    BatchWorkload::new()
        .with(
            Modality::Text,
            ModalityWorkload::new(8192 - images * 169, 1),
        )
        .with(Modality::Image, ModalityWorkload::new(images * 169, images))
}

/// A planner configuration with a pure **time** budget (no evaluation cap):
/// determinism must come from the virtual-time schedule alone.
fn time_budgeted_config(workers: usize, budget_ms: u64, seed: u64) -> PlannerConfig {
    let mut config = PlannerConfig::default().with_num_threads(workers);
    config.search.time_budget = Duration::from_millis(budget_ms);
    config.search.max_evaluations = None;
    config.search.streams = 4;
    config.search.seed = seed;
    config
}

fn assert_plans_bit_identical(a: &DipPlan, b: &DipPlan, what: &str) {
    assert_eq!(a.graph, b.graph, "{what}: stage graphs differ");
    assert_eq!(a.orders, b.orders, "{what}: rank orders differ");
    assert_eq!(
        a.segment_priorities, b.segment_priorities,
        "{what}: priorities differ"
    );
    assert_eq!(a.memory_plan, b.memory_plan, "{what}: memory plans differ");
    assert_eq!(
        a.sub_microbatches, b.sub_microbatches,
        "{what}: sub-microbatch plans differ"
    );
    assert_eq!(
        a.stats.search_evaluations, b.stats.search_evaluations,
        "{what}: evaluation counts differ"
    );
    assert_eq!(
        a.stats.search_worker_evaluations, b.stats.search_worker_evaluations,
        "{what}: per-stream evaluation counts differ"
    );
    assert_eq!(
        a.stats.planned_time_s.to_bits(),
        b.stats.planned_time_s.to_bits(),
        "{what}: planned times differ bit-wise"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Fixed seed + time budget ⇒ the same plan at 1, 2, 4 and 8 workers
    /// and across repeated runs, for arbitrary workload shapes and
    /// budgets. This is the tentpole guarantee: wall clocks are out of the
    /// planning loop entirely. The `workers` knob now drives every parallel
    /// phase — the block-parallel stage-graph build included — so this
    /// covers the graph-build axis end to end.
    #[test]
    fn time_budgeted_plans_are_bit_identical_across_worker_counts(
        images_a in 0u64..49,
        images_b in 0u64..49,
        microbatches in 2usize..6,
        budget_ms in 5u64..40,
        seed in 0u64..1000,
    ) {
        let spec = zoo::vlm_s();
        let parallel = ParallelConfig::new(4, 4, 1);
        let cluster = ClusterSpec::h800_cluster(2);
        let batches: Vec<BatchWorkload> = (0..microbatches)
            .map(|i| vlm_batch(if i % 2 == 0 { images_a } else { images_b }))
            .collect();

        let plan_at = |workers: usize| {
            let planner = DipPlanner::new(
                &spec,
                parallel,
                &cluster,
                time_budgeted_config(workers, budget_ms, seed),
            );
            planner.plan_iteration(&batches).expect("plans")
        };

        let reference = plan_at(1);
        for workers in [2usize, 4, 8] {
            let plan = plan_at(workers);
            assert_plans_bit_identical(&reference, &plan, &format!("{workers} workers"));
        }
        // Repeated run at the same worker count: bit-identical too.
        let again = plan_at(4);
        assert_plans_bit_identical(&reference, &again, "repeated run");
    }

    /// The session layer preserves the guarantee end to end (warm starts,
    /// cache keys and all): two sessions over the same request stream
    /// produce bit-identical plans at different pool widths.
    #[test]
    fn sessions_replay_identically_at_any_width(
        images in 0u64..49,
        seed in 0u64..1000,
    ) {
        let spec = zoo::vlm_s();
        let parallel = ParallelConfig::new(4, 4, 1);
        let cluster = ClusterSpec::h800_cluster(2);
        let requests = [
            PlanRequest::new(vec![vlm_batch(images), vlm_batch(images / 2)]),
            PlanRequest::new(vec![vlm_batch(48 - images), vlm_batch(images)]),
        ];
        let run = |workers: usize| -> Vec<DipPlan> {
            let session = PlanningSession::with_config(
                &spec,
                parallel,
                &cluster,
                time_budgeted_config(workers, 10, seed),
                SessionConfig::default(),
            );
            requests
                .iter()
                .map(|r| session.plan(r).expect("plans").plan)
                .collect()
        };
        let narrow = run(1);
        let wide = run(8);
        for (a, b) in narrow.iter().zip(&wide) {
            assert_plans_bit_identical(a, b, "session width");
        }
    }

    /// The parallel memory optimiser is byte-identical to the serial path
    /// on random workloads and budget tightness — at the `tests/` level,
    /// over the full planner-built graph and schedule.
    #[test]
    fn parallel_memopt_is_byte_identical_to_serial(
        images in 0u64..49,
        microbatches in 2usize..7,
        divisor in 1u64..6,
        threads in 2usize..9,
    ) {
        let spec = zoo::vlm_s();
        let parallel = ParallelConfig::new(4, 4, 1);
        let cluster = ClusterSpec::h800_cluster(2);
        let planner = DipPlanner::new(
            &spec,
            parallel,
            &cluster,
            time_budgeted_config(1, 5, 3),
        );
        let batches: Vec<BatchWorkload> =
            (0..microbatches).map(|i| vlm_batch(images + i as u64)).collect();
        let plan = planner.plan_iteration(&batches).expect("plans");

        // Re-run the memory optimiser over the planned graph and schedule
        // with a random budget tightness, serial versus parallel.
        let budget: Vec<u64> = plan
            .graph
            .static_memory
            .iter()
            .map(|_| {
                let unconstrained: u64 = plan
                    .graph
                    .items()
                    .iter()
                    .map(|i| i.activation_bytes)
                    .sum::<u64>()
                    .max(1);
                unconstrained / divisor + 1
            })
            .collect();
        let config = MemoryOptConfig::default();
        let serial =
            optimize_memory_detailed(&plan.graph, &plan.orders, &budget, &config, 1).unwrap();
        let wide =
            optimize_memory_detailed(&plan.graph, &plan.orders, &budget, &config, threads)
                .unwrap();
        prop_assert_eq!(serial.plan, wide.plan);
    }

    /// The block-parallel stage-graph build is byte-identical to the serial
    /// build at 1/2/4/8 workers over random workloads, sub-microbatch splits
    /// and (homogeneous or mixed) topologies — items, dependencies and every
    /// float, the same guarantee the planner's `workers` knob rests on.
    #[test]
    fn parallel_graph_build_is_byte_identical_to_serial(
        images in 0u64..49,
        microbatches in 1usize..6,
        encoder_splits in 1usize..5,
        mixed in 0usize..2,
    ) {
        let spec = zoo::vlm_s();
        let parallel = ParallelConfig::new(4, 4, 1);
        let topology = if mixed == 1 {
            ClusterTopology::mixed_h800_h20(1, 1)
        } else {
            ClusterSpec::h800_cluster(2).topology()
        };
        let mut k = BTreeMap::new();
        k.insert(spec.backbone_id().unwrap(), 2usize);
        let placement = separated_placement(&spec, parallel, &k);
        let batches: Vec<BatchWorkload> =
            (0..microbatches).map(|i| vlm_batch(images + i as u64)).collect();
        let mut plan = SubMicrobatchPlan::uniform(placement.segments.len(), batches.len());
        for m in 0..batches.len() {
            plan.set(0, m, encoder_splits);
        }
        let build = |workers: usize| {
            StageGraphBuilder::new_on(&spec, &placement, &topology)
                .with_workers(workers)
                .build(&batches, &plan)
                .expect("builds")
        };
        let serial = build(1);
        for workers in [2usize, 4, 8] {
            prop_assert_eq!(&serial, &build(workers), "{} workers", workers);
        }
    }

    /// `StageGraph::reprice` is bit-identical to rebuilding the graph with
    /// the memory plan baked in — items, dependencies, durations — and the
    /// repriced graph schedules to the bit-same makespan, over random
    /// workloads and random per-pair strategy assignments.
    #[test]
    fn reprice_equals_full_rebuild_to_the_bit(
        images in 0u64..49,
        microbatches in 1usize..6,
        ladder_len in 2usize..7,
        stride in 1usize..5,
        gap in 0usize..4,
    ) {
        let spec = zoo::vlm_s();
        let parallel = ParallelConfig::new(4, 4, 1);
        let cluster = ClusterSpec::h800_cluster(2);
        let placement = separated_placement(&spec, parallel, &BTreeMap::new());
        let batches: Vec<BatchWorkload> =
            (0..microbatches).map(|i| vlm_batch(images + 2 * i as u64)).collect();
        let plan = SubMicrobatchPlan::uniform(placement.segments.len(), batches.len());
        let base = StageGraphBuilder::new(&spec, &placement, &cluster)
            .build(&batches, &plan)
            .expect("builds");

        // A deterministic pseudo-random memory plan: walk the strategy
        // ladder with the sampled stride, leaving every (gap+1)-th pair on
        // the default keep-everything strategy.
        let ladder = MemoryStrategy::ladder(ladder_len);
        let mut memory_plan = MemoryPlan::new();
        for pair in 0..base.num_stage_pairs {
            if gap == 0 || pair % (gap + 1) != 0 {
                memory_plan.set(pair, ladder[(pair * stride) % ladder.len()]);
            }
        }

        let rebuilt = StageGraphBuilder::new(&spec, &placement, &cluster)
            .with_memory_plan(memory_plan.clone())
            .build(&batches, &plan)
            .expect("builds");
        let mut repriced = base.clone();
        repriced.reprice(&memory_plan);
        prop_assert_eq!(&repriced, &rebuilt);

        // Scheduling the repriced and rebuilt graphs is bit-identical too.
        let queue = DualQueueConfig::default();
        let (orders_a, makespan_a) = dual_queue::schedule(&repriced, &queue);
        let (orders_b, makespan_b) = dual_queue::schedule(&rebuilt, &queue);
        prop_assert_eq!(orders_a, orders_b);
        prop_assert_eq!(makespan_a.to_bits(), makespan_b.to_bits());
    }
}

/// The determinism guarantee is documented as machine-independent; CI runs
/// this same binary under both debug and release profiles, so any
/// profile-dependent divergence (overflow checks, debug asserts, float
/// contraction) in the planning path would surface as a difference in the
/// session's own deterministic counters.
#[test]
fn deterministic_counters_are_profile_stable() {
    let spec = zoo::vlm_s();
    let parallel = ParallelConfig::new(4, 4, 1);
    let cluster = ClusterSpec::h800_cluster(2);
    let planner = DipPlanner::new(&spec, parallel, &cluster, time_budgeted_config(2, 15, 42));
    let batches = vec![vlm_batch(12), vlm_batch(30), vlm_batch(3)];
    let a = planner.plan_iteration(&batches).expect("plans");
    let b = planner.plan_iteration(&batches).expect("plans");
    assert_plans_bit_identical(&a, &b, "repeated plan_iteration");
    // The quota is the only stopping rule: every stream either hit it
    // exactly or (DFS-like corner cases aside) stopped at it.
    assert!(a
        .stats
        .search_worker_evaluations
        .iter()
        .all(|&e| e > 0 || a.stats.search_evaluations >= 1));
}
