//! Evaluation-kernel equivalence properties: the reusable-workspace
//! interleaver (`schedule_into`), its cutoff-bounded variant
//! (`schedule_bounded`) and the incumbent-pruned search paths must all be
//! *behaviour-preserving* rewrites of the allocating originals — same
//! orders, same makespan bits, same best plan — across random workloads,
//! topologies and priority assignments. The workspace is deliberately
//! dirtied on a differently-shaped graph before each comparison, because
//! "reused scratch state leaks into the next evaluation" is exactly the
//! bug class these properties exist to catch.

use dip_core::ordering::{search_ordering, OrderingSearchConfig, SearchStrategy};
use dip_models::{zoo, BatchWorkload, Modality, ModalityWorkload};
use dip_pipeline::{
    balanced_param_placement, dual_queue, DualQueueConfig, ParallelConfig, ScheduleWorkspace,
    StageGraph, StageGraphBuilder, SubMicrobatchPlan,
};
use dip_sim::ClusterSpec;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::time::Duration;

/// A text-only stage graph over `pp` pipeline ranks with `vpp` segments
/// per rank and `microbatches` microbatches of `tokens` tokens each.
fn lm_graph(microbatches: usize, pp: usize, vpp: usize, tokens: u64) -> (StageGraph, usize) {
    let spec = zoo::lm_7b();
    let parallel = ParallelConfig::new(2, pp, 1);
    let placement = balanced_param_placement(&spec, parallel, vpp);
    let cluster = ClusterSpec::h800_cluster(1);
    let builder = StageGraphBuilder::new(&spec, &placement, &cluster);
    let batch = BatchWorkload::new().with(Modality::Text, ModalityWorkload::from_tokens(tokens));
    let batches = vec![batch; microbatches];
    let plan = SubMicrobatchPlan::uniform(placement.segments.len(), batches.len());
    let n = placement.segments.len();
    (builder.build(&batches, &plan).unwrap(), n)
}

/// A multimodal (text + image) graph with a split backbone — the richer
/// dependency structure (modality bridges, loss-boundary edges) the
/// search actually operates on.
fn vlm_graph(microbatches: usize, images: u64) -> (StageGraph, usize) {
    let spec = zoo::vlm_s();
    let parallel = ParallelConfig::new(4, 4, 1);
    let mut k = BTreeMap::new();
    k.insert(spec.backbone_id().unwrap(), 2usize);
    let placement = dip_pipeline::separated_placement(&spec, parallel, &k);
    let cluster = ClusterSpec::h800_cluster(2);
    let builder = StageGraphBuilder::new(&spec, &placement, &cluster);
    let images = images.clamp(1, 32);
    let batch = BatchWorkload::new()
        .with(
            Modality::Text,
            ModalityWorkload::new(8192 - images * 169, 1),
        )
        .with(Modality::Image, ModalityWorkload::new(images * 169, images));
    let batches = vec![batch; microbatches];
    let plan = SubMicrobatchPlan::uniform(placement.segments.len(), batches.len());
    let n = placement.segments.len();
    (builder.build(&batches, &plan).unwrap(), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `schedule_into` through a *reused, dirty* workspace is bit-identical
    /// (per-rank orders and makespan bits) to a fresh `schedule` call, over
    /// random workload shapes, segment counts and priority assignments.
    #[test]
    fn reused_workspace_kernel_is_bit_identical_to_fresh_schedule(
        microbatches in 2usize..7,
        pp in 2usize..5,
        vpp in 1usize..3,
        tokens in 1024u64..16384,
        p0 in 0u64..11,
        p1 in 0u64..11,
    ) {
        let (graph, n) = lm_graph(microbatches, pp, vpp, tokens);
        let mut ws = ScheduleWorkspace::new();
        // Dirty the workspace on a graph of a different shape first.
        let (other, _) = lm_graph(microbatches + 1, 2, 1, 2048);
        dual_queue::schedule_into(&other, &DualQueueConfig::default(), &mut ws);
        let mut priorities = vec![0i64; n];
        if n > 0 {
            priorities[0] = p0 as i64 - 5;
            priorities[n - 1] = p1 as i64 - 5;
        }
        let config = DualQueueConfig {
            segment_priorities: priorities,
            ..DualQueueConfig::default()
        };
        let (orders, makespan) = dual_queue::schedule(&graph, &config);
        let ws_makespan = dual_queue::schedule_into(&graph, &config, &mut ws);
        prop_assert_eq!(makespan.to_bits(), ws_makespan.to_bits());
        prop_assert_eq!(orders.orders.as_slice(), ws.orders());
    }

    /// `schedule_bounded` with an infinite cutoff is exactly
    /// `schedule_into`, and a cutoff at the true makespan still completes
    /// with the same bits (the abort condition is strictly-greater).
    #[test]
    fn bounded_with_infinite_cutoff_equals_schedule_into(
        microbatches in 2usize..6,
        images in 1u64..20,
        p0 in 0u64..11,
    ) {
        let (graph, n) = vlm_graph(microbatches, images);
        let mut priorities = vec![0i64; n];
        priorities[0] = p0 as i64 - 5;
        let config = DualQueueConfig {
            segment_priorities: priorities,
            ..DualQueueConfig::default()
        };
        let mut ws = ScheduleWorkspace::new();
        let makespan = dual_queue::schedule_into(&graph, &config, &mut ws);
        let orders = ws.orders().to_vec();
        let unbounded = dual_queue::schedule_bounded(&graph, &config, &mut ws, f64::INFINITY);
        prop_assert_eq!(unbounded.map(f64::to_bits), Some(makespan.to_bits()));
        prop_assert_eq!(orders.as_slice(), ws.orders());
        let at_makespan = dual_queue::schedule_bounded(&graph, &config, &mut ws, makespan);
        prop_assert_eq!(at_makespan.map(f64::to_bits), Some(makespan.to_bits()));
        // Just below the makespan the pass must abort.
        prop_assert!(
            dual_queue::schedule_bounded(&graph, &config, &mut ws, makespan * (1.0 - 1e-12))
                .is_none()
        );
    }
}

/// A fixed-quota search configuration so pruned and unpruned runs explore
/// the exact same ordering sequence.
fn search_config(strategy: SearchStrategy, workers: usize, prune: bool) -> OrderingSearchConfig {
    OrderingSearchConfig {
        strategy,
        time_budget: Duration::from_secs(3600),
        max_evaluations: Some(24),
        streams: 4,
        workers,
        prune_bounded_evaluations: prune,
        seed: 13,
        ..OrderingSearchConfig::default()
    }
}

/// Incumbent-bounded pruning is exact: the pruned random and DFS searches
/// return the same best plan (priorities, orders, makespan bits) as the
/// unpruned ones, at every worker count — pruning is a wall-clock
/// optimisation, never a behaviour change.
#[test]
fn pruned_search_returns_the_same_best_plan_as_unpruned() {
    let (graph, n) = vlm_graph(3, 10);
    let mut total_pruned = 0u64;
    for strategy in [SearchStrategy::Random, SearchStrategy::Dfs] {
        let reference = search_ordering(&graph, n, &search_config(strategy, 1, false));
        assert_eq!(
            reference.pruned_evaluations, 0,
            "{strategy:?}: unpruned search prunes nothing"
        );
        for workers in [1usize, 2, 4, 8] {
            let pruned = search_ordering(&graph, n, &search_config(strategy, workers, true));
            assert_eq!(
                pruned.segment_priorities, reference.segment_priorities,
                "{strategy:?}/{workers} workers"
            );
            assert_eq!(
                pruned.orders, reference.orders,
                "{strategy:?}/{workers} workers"
            );
            assert_eq!(
                pruned.best_time_s.to_bits(),
                reference.best_time_s.to_bits(),
                "{strategy:?}/{workers} workers"
            );
            // Pruned evaluations still count against the quota, so the
            // exploration accounting is identical too.
            assert_eq!(pruned.evaluations, reference.evaluations);
            assert_eq!(pruned.worker_evaluations, reference.worker_evaluations);
            total_pruned += pruned.pruned_evaluations;
        }
    }
    // The property is only meaningful if the bound actually fired: with
    // 4 streams × 24 evaluations most candidates lose to the incumbent.
    assert!(total_pruned > 0, "the cutoff bound never pruned anything");
}

/// MCTS never prunes (its backpropagation needs true rollout values), so
/// the knob must be a no-op there and the pruned counter must stay zero.
#[test]
fn mcts_is_unaffected_by_the_pruning_knob() {
    let (graph, n) = vlm_graph(3, 10);
    let with_knob = search_ordering(&graph, n, &search_config(SearchStrategy::Mcts, 2, true));
    let without = search_ordering(&graph, n, &search_config(SearchStrategy::Mcts, 2, false));
    assert_eq!(with_knob.pruned_evaluations, 0);
    assert_eq!(without.pruned_evaluations, 0);
    assert_eq!(with_knob.segment_priorities, without.segment_priorities);
    assert_eq!(with_knob.orders, without.orders);
    assert_eq!(
        with_knob.best_time_s.to_bits(),
        without.best_time_s.to_bits()
    );
}
