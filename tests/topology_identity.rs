//! Topology-refactor identity properties: a uniform [`ClusterTopology`]
//! built from any [`ClusterSpec`] must plan bit-identically to the
//! spec-based path (the pre-refactor entry point), every placement mode
//! must reduce to that same plan on uniform topologies, and topology
//! fingerprints must separate any two clusters that differ in any rank's
//! device.

use dip_core::{DipPlan, DipPlanner, PlanRequest, PlannerConfig, PlanningSession, SessionConfig};
use dip_models::{zoo, BatchWorkload, Modality, ModalityWorkload};
use dip_pipeline::{ParallelConfig, PlacementMode};
use dip_sim::{ClusterSpec, ClusterTopology, GpuGeneration, GpuSpec, NodeSpec};
use proptest::prelude::*;
use std::time::Duration;

fn vlm_batch(images: u64) -> BatchWorkload {
    let images = images.min(48);
    BatchWorkload::new()
        .with(
            Modality::Text,
            ModalityWorkload::new(8192 - images * 169, 1),
        )
        .with(Modality::Image, ModalityWorkload::new(images * 169, images))
}

/// An evaluation-bounded (hence deterministic at fixed worker count) planner
/// configuration.
fn deterministic_config() -> PlannerConfig {
    let mut config = PlannerConfig::fast();
    config.search.time_budget = Duration::from_secs(3600);
    config.search.max_evaluations = Some(96);
    config
}

fn assert_plans_bit_identical(a: &DipPlan, b: &DipPlan) {
    assert_eq!(a.graph, b.graph, "stage graphs differ");
    assert_eq!(a.orders, b.orders, "rank orders differ");
    assert_eq!(a.segment_priorities, b.segment_priorities);
    assert_eq!(a.memory_plan, b.memory_plan);
    assert_eq!(a.sub_microbatches, b.sub_microbatches);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The `ClusterSpec` constructor path and an explicit uniform
    /// `ClusterTopology` must produce bit-identical `PlanOutcome`s: same
    /// signature, same graph (durations, lags, memory), same schedule,
    /// same memory plan.
    #[test]
    fn uniform_topology_plans_bit_identically_to_the_cluster_spec_path(
        nodes in 2usize..5,
        images_a in 0u64..49,
        images_b in 0u64..49,
    ) {
        let spec = zoo::vlm_s();
        let parallel = ParallelConfig::new(4, 4, 1);
        let cluster = ClusterSpec::h800_cluster(nodes);
        let request = PlanRequest::new(vec![vlm_batch(images_a), vlm_batch(images_b)]);

        let via_spec = PlanningSession::with_config(
            &spec,
            parallel,
            &cluster,
            deterministic_config(),
            SessionConfig::default(),
        );
        let via_topology = PlanningSession::from_planner(
            DipPlanner::on_topology(&spec, parallel, cluster.topology(), deterministic_config()),
            SessionConfig::default(),
        );

        let a = via_spec.plan(&request).unwrap();
        let b = via_topology.plan(&request).unwrap();
        prop_assert_eq!(a.signature, b.signature);
        prop_assert_eq!(a.cache_hit, b.cache_hit);
        assert_plans_bit_identical(&a.plan, &b.plan);
        // Both paths key their caches identically, too.
        prop_assert_eq!(via_spec.cache_key(&request), via_topology.cache_key(&request));

        // And both simulate to the exact same iteration time.
        let ta = via_spec.simulate(&a.plan).unwrap().metrics.iteration_time_s;
        let tb = via_topology.simulate(&b.plan).unwrap().metrics.iteration_time_s;
        prop_assert_eq!(ta.to_bits(), tb.to_bits());
    }

    /// On a uniform topology the latency-balanced placement mode must plan
    /// bit-identically to the capacity-aware default (which in turn equals
    /// the round-robin equal split): the heterogeneity machinery — the
    /// per-rank latency DP and the hosting-rank segment-count pricing —
    /// must vanish completely when every device is the same, so uniform
    /// clusters keep one canonical plan across all placement modes.
    #[test]
    fn latency_balanced_plans_bit_identically_on_uniform_topologies(
        nodes in 2usize..5,
        images_a in 0u64..49,
        images_b in 0u64..49,
    ) {
        let spec = zoo::vlm_s();
        let parallel = ParallelConfig::new(4, 4, 1);
        let topology = ClusterSpec::h800_cluster(nodes).topology();
        let request = PlanRequest::new(vec![vlm_batch(images_a), vlm_batch(images_b)]);

        let session_for = |placement: PlacementMode| {
            let mut config = deterministic_config();
            config.partitioner.placement = placement;
            PlanningSession::from_planner(
                DipPlanner::on_topology(&spec, parallel, topology.clone(), config),
                SessionConfig::default(),
            )
        };
        let aware = session_for(PlacementMode::CapacityAware);
        let balanced = session_for(PlacementMode::LatencyBalanced);

        let a = aware.plan(&request).unwrap();
        let b = balanced.plan(&request).unwrap();
        prop_assert_eq!(a.signature, b.signature);
        assert_plans_bit_identical(&a.plan, &b.plan);

        let ta = aware.simulate(&a.plan).unwrap().metrics.iteration_time_s;
        let tb = balanced.simulate(&b.plan).unwrap().metrics.iteration_time_s;
        prop_assert_eq!(ta.to_bits(), tb.to_bits());
    }

    /// Changing any single rank's device spec must change the topology
    /// fingerprint (otherwise two different clusters could share plan-cache
    /// entries).
    #[test]
    fn fingerprints_differ_whenever_any_ranks_spec_differs(
        node in 0usize..4,
        extra_capacity_gib in 1u64..32,
        flops_scale_permille in 1u64..500,
    ) {
        let gpu = GpuSpec::preset(GpuGeneration::H800);
        let base_nodes: Vec<NodeSpec> = (0..4).map(|_| NodeSpec::new(gpu, 8)).collect();
        let base = ClusterTopology::new(base_nodes.clone());

        // Perturb one node's memory capacity.
        let mut more_memory = base_nodes.clone();
        more_memory[node].gpu.mem_capacity += extra_capacity_gib << 30;
        prop_assert_ne!(
            base.fingerprint(),
            ClusterTopology::new(more_memory).fingerprint()
        );

        // Perturb the same node's compute throughput.
        let mut less_compute = base_nodes.clone();
        less_compute[node].gpu.peak_flops *= 1.0 - flops_scale_permille as f64 / 1000.0;
        prop_assert_ne!(
            base.fingerprint(),
            ClusterTopology::new(less_compute).fingerprint()
        );

        // An unchanged copy fingerprints equal.
        prop_assert_eq!(
            base.fingerprint(),
            ClusterTopology::new(base_nodes).fingerprint()
        );
    }

    /// Node order is part of a topology's identity: rank *r* occupies the
    /// GPUs of the *r*-th slot in the node list, so two heterogeneous
    /// clusters with the same multiset of nodes in different orders host
    /// every rank differently and must fingerprint differently — while
    /// byte-identical node lists fingerprint equal. (This pins the
    /// "Ordering contract" documented on `ClusterTopology::fingerprint`.)
    #[test]
    fn fingerprints_are_order_sensitive_on_heterogeneous_node_lists(
        rotation in 1usize..4,
        h20_gpus in 3usize..9,
    ) {
        let h800 = GpuSpec::preset(GpuGeneration::H800);
        let h20 = GpuSpec::preset(GpuGeneration::H20);
        // Four pairwise-distinct nodes, so every nontrivial rotation
        // changes the spec at some position.
        let nodes = vec![
            NodeSpec::new(h800, 8),
            NodeSpec::new(h20, h20_gpus),
            NodeSpec::new(h800, 4),
            NodeSpec::new(h20, 2),
        ];
        let mut rotated = nodes.clone();
        rotated.rotate_left(rotation);

        prop_assert_ne!(
            ClusterTopology::new(nodes.clone()).fingerprint(),
            ClusterTopology::new(rotated).fingerprint(),
            "permuted heterogeneous node lists must fingerprint differently"
        );
        prop_assert_eq!(
            ClusterTopology::new(nodes.clone()).fingerprint(),
            ClusterTopology::new(nodes).fingerprint()
        );
    }
}
