//! Placement-mode semantics: the latency-balanced mode must stay within
//! every rank's memory budget on arbitrary mixed clusters, must reduce to
//! the capacity-aware equal split on uniform ones, and must be at least as
//! good as capacity-aware placement end to end on the mixed H800+H20
//! testbed.

use dip_core::{DipPlanner, PlannerConfig};
use dip_models::{zoo, BatchWorkload, Modality, ModalityWorkload};
use dip_pipeline::{
    capacity_aware_separated_placement, latency_balanced_separated_placement, ModelChunk,
    ParallelConfig, PlacementMode,
};
use dip_sim::{ClusterTopology, EfficiencyModel, GpuGeneration, GpuSpec, NodeSpec};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::time::Duration;

fn vlm_batch(images: u64) -> BatchWorkload {
    let images = images.min(48);
    BatchWorkload::new()
        .with(
            Modality::Text,
            ModalityWorkload::new(8192 - images * 169, 1),
        )
        .with(Modality::Image, ModalityWorkload::new(images * 169, images))
}

fn generation(kind: usize) -> GpuGeneration {
    match kind % 3 {
        0 => GpuGeneration::H800,
        1 => GpuGeneration::H20,
        _ => GpuGeneration::H100,
    }
}

/// A topology of 8-GPU nodes whose device kinds follow `kinds`.
fn topology_of(kinds: &[usize]) -> ClusterTopology {
    ClusterTopology::new(
        kinds
            .iter()
            .map(|&k| NodeSpec::new(GpuSpec::preset(generation(k)), 8))
            .collect(),
    )
}

fn deterministic_config() -> PlannerConfig {
    let mut config = PlannerConfig::fast();
    config.search.time_budget = Duration::from_secs(3600);
    config.search.max_evaluations = Some(128);
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end regression on random mixed topologies: the latency-balanced
    /// split keeps every rank's static model state (parameters, gradients,
    /// optimizer state) within the usable memory of the device actually
    /// hosting that rank, for the paper's model/cluster family. (The DP's
    /// built-in guard is deliberately weaker — it only rejects a *single*
    /// chunk that alone overflows its host, leaving accumulated overflow to
    /// the downstream memory planner — so this test pins the end-to-end
    /// outcome, not the guard.)
    #[test]
    fn latency_balanced_respects_every_ranks_memory_budget(
        kinds in prop::collection::vec(0usize..3, 1..5),
        k_backbone in 1usize..5,
        images in 0u64..49,
    ) {
        let spec = zoo::vlm_s();
        let parallel = ParallelConfig::new(4, 4, 1);
        let topology = topology_of(&kinds);
        let mut counts = BTreeMap::new();
        counts.insert(spec.backbone_id().unwrap(), k_backbone);
        let placement = latency_balanced_separated_placement(
            &spec,
            parallel,
            &counts,
            &topology,
            EfficiencyModel::default(),
            &vlm_batch(images),
        );
        placement.validate(&spec).unwrap();
        for (rank, bytes) in placement.static_memory_per_rank(&spec).iter().enumerate() {
            let device = topology.rank_device(rank, parallel.tp);
            prop_assert!(
                *bytes <= device.usable_memory(),
                "rank {rank} holds {bytes} static bytes, exceeding its device's usable {}",
                device.usable_memory()
            );
        }
    }

    /// Regression: on any uniform cluster the latency-balanced mode must
    /// produce the exact same placement as the capacity-aware mode (which
    /// itself reduces to the equal round-robin split there).
    #[test]
    fn latency_balanced_matches_capacity_aware_on_uniform_clusters(
        kind in 0usize..3,
        nodes in 1usize..4,
        k_backbone in 1usize..5,
        images in 0u64..49,
    ) {
        let spec = zoo::vlm_s();
        let parallel = ParallelConfig::new(4, 4, 1);
        let topology = topology_of(&vec![kind; nodes]);
        let mut counts = BTreeMap::new();
        counts.insert(spec.backbone_id().unwrap(), k_backbone);
        let aware = capacity_aware_separated_placement(&spec, parallel, &counts, &topology);
        let balanced = latency_balanced_separated_placement(
            &spec,
            parallel,
            &counts,
            &topology,
            EfficiencyModel::default(),
            &vlm_batch(images),
        );
        prop_assert_eq!(aware, balanced);
    }
}

#[test]
fn latency_balanced_follows_simulated_speed_not_spec_sheet_capability() {
    // 1×8 H800 + 1×8 H20 at TP=4: ranks 0,1 on H800, ranks 2,3 on H20.
    let spec = zoo::vlm_s();
    let parallel = ParallelConfig::new(4, 4, 1);
    let topology = ClusterTopology::mixed_h800_h20(1, 1);
    let mut counts = BTreeMap::new();
    let backbone = spec.backbone_id().unwrap();
    counts.insert(backbone, 2usize);

    let aware = capacity_aware_separated_placement(&spec, parallel, &counts, &topology);
    let balanced = latency_balanced_separated_placement(
        &spec,
        parallel,
        &counts,
        &topology,
        EfficiencyModel::default(),
        &vlm_batch(24),
    );
    balanced.validate(&spec).unwrap();

    let h800_layers = |p: &dip_pipeline::Placement, module| -> usize {
        p.segments_of_module(module)
            .iter()
            .map(|&s| p.segments[s].chunks[0].num_layers() + p.segments[s].chunks[1].num_layers())
            .sum()
    };
    // The FLOP-bound backbone leans towards the H800 ranks (simulated
    // H20/H800 latency ratio ~6.4 per transformer layer).
    let backbone_total = spec.module(backbone).num_layers();
    let lb_backbone_h800 = h800_layers(&balanced, backbone);
    assert!(
        lb_backbone_h800 * 2 > backbone_total,
        "latency-balanced puts {lb_backbone_h800}/{backbone_total} backbone layers on H800 ranks"
    );
    // The decisive difference: the capacity-aware mode classifies the ViT
    // encoder as memory-heavy and leans it towards the high-HBM H20 ranks,
    // but its layers are actually *compute-bound* in simulation (~5.6×
    // slower on an H20). The latency-balanced DP sees the simulated
    // latency, not the spec sheet, and must shift the encoder to the H800
    // ranks where the capacity heuristic does not.
    let (encoder, _) = spec.encoders().next().unwrap();
    let encoder_total = spec.module(encoder).num_layers();
    let lb_encoder_h800 = h800_layers(&balanced, encoder);
    let ca_encoder_h800 = h800_layers(&aware, encoder);
    assert!(
        lb_encoder_h800 * 2 > encoder_total,
        "latency-balanced puts {lb_encoder_h800}/{encoder_total} encoder layers on H800 ranks"
    );
    assert!(
        lb_encoder_h800 > ca_encoder_h800,
        "latency-balanced encoder H800 share {lb_encoder_h800} should exceed capacity-aware {ca_encoder_h800}"
    );
}

#[test]
fn latency_balanced_is_at_least_as_good_as_capacity_aware_on_the_mixed_cluster() {
    let spec = zoo::vlm_s();
    let parallel = ParallelConfig::new(4, 4, 1);
    let topology = ClusterTopology::mixed_h800_h20(1, 1);
    let batches: Vec<BatchWorkload> = [24u64, 8, 40, 2, 32, 16]
        .iter()
        .map(|&i| vlm_batch(i))
        .collect();

    let run = |placement: PlacementMode| {
        let mut config = deterministic_config();
        config.partitioner.placement = placement;
        let planner = DipPlanner::on_topology(&spec, parallel, topology.clone(), config);
        let (_, outcome) = planner.plan_and_simulate(&batches).unwrap();
        outcome.metrics.iteration_time_s
    };
    let aware = run(PlacementMode::CapacityAware);
    let balanced = run(PlacementMode::LatencyBalanced);
    assert!(
        balanced <= aware,
        "latency-balanced {balanced} must be at least as good as capacity-aware {aware}"
    );
}

#[test]
fn latency_balanced_chunks_are_time_balanced_on_the_mixed_cluster() {
    // The DP's objective, checked directly: within each backbone segment,
    // the slowest chunk priced on its hosting device must not dominate the
    // mean by more than the granularity of whole layers allows.
    let spec = zoo::vlm_s();
    let parallel = ParallelConfig::new(4, 4, 1);
    let topology = ClusterTopology::mixed_h800_h20(1, 1);
    let efficiency = EfficiencyModel::default();
    let workload = vlm_batch(24);
    let mut counts = BTreeMap::new();
    let backbone = spec.backbone_id().unwrap();
    counts.insert(backbone, 1usize);
    let placement = latency_balanced_separated_placement(
        &spec, parallel, &counts, &topology, efficiency, &workload,
    );
    let workloads: BTreeMap<_, _> = spec.module_workloads(&workload).into_iter().collect();
    let chunk_time = |chunk: &ModelChunk, rank: usize| {
        let t = topology.rank_timing(rank, parallel.tp, efficiency);
        let cost = chunk.cost(&spec, &workloads, parallel.tp);
        t.forward_latency(&cost) + t.backward_latency(&cost)
    };
    for &s in &placement.segments_of_module(backbone) {
        let times: Vec<f64> = placement.segments[s]
            .chunks
            .iter()
            .enumerate()
            .map(|(r, c)| chunk_time(c, r))
            .collect();
        let max = times.iter().cloned().fold(0.0, f64::max);
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        assert!(
            max <= mean * 1.5,
            "imbalanced latency-balanced segment {s}: {times:?}"
        );
    }
}
