//! Heterogeneous-cluster integration tests (the Table 4 scenario family):
//! planning end to end on a mixed H800+H20 cluster, capacity-aware
//! placement against naive round-robin, and per-device memory budgets.

use dip_core::{DipPlanner, PlanRequest, PlannerConfig, PlanningSession, SessionConfig};
use dip_models::{zoo, BatchWorkload, Modality, ModalityWorkload};
use dip_pipeline::{ParallelConfig, PlacementMode};
use dip_sim::ClusterTopology;
use std::time::Duration;

fn vlm_batch(images: u64) -> BatchWorkload {
    let images = images.min(48);
    BatchWorkload::new()
        .with(
            Modality::Text,
            ModalityWorkload::new(8192 - images * 169, 1),
        )
        .with(Modality::Image, ModalityWorkload::new(images * 169, images))
}

fn batches() -> Vec<BatchWorkload> {
    [24u64, 8, 40, 2, 32, 16]
        .iter()
        .map(|&i| vlm_batch(i))
        .collect()
}

fn deterministic_config() -> PlannerConfig {
    let mut config = PlannerConfig::fast();
    config.search.time_budget = Duration::from_secs(3600);
    config.search.max_evaluations = Some(128);
    config
}

#[test]
fn capacity_aware_placement_beats_round_robin_on_the_mixed_cluster() {
    let spec = zoo::vlm_s();
    let parallel = ParallelConfig::new(4, 4, 1);
    let topology = ClusterTopology::mixed_h800_h20(1, 1);

    let aware = DipPlanner::on_topology(&spec, parallel, topology.clone(), deterministic_config());
    let mut round_robin_config = deterministic_config();
    round_robin_config.partitioner.placement = PlacementMode::RoundRobin;
    let round_robin = DipPlanner::on_topology(&spec, parallel, topology, round_robin_config);

    let (_, aware_outcome) = aware.plan_and_simulate(&batches()).unwrap();
    let (_, rr_outcome) = round_robin.plan_and_simulate(&batches()).unwrap();
    assert!(
        aware_outcome.metrics.iteration_time_s < rr_outcome.metrics.iteration_time_s,
        "capacity-aware {} must beat round-robin {} on H800+H20",
        aware_outcome.metrics.iteration_time_s,
        rr_outcome.metrics.iteration_time_s
    );
}

#[test]
fn heterogeneous_sessions_cache_and_respect_per_device_memory() {
    let spec = zoo::vlm_s();
    let parallel = ParallelConfig::new(4, 4, 1);
    let topology = ClusterTopology::mixed_h800_h20(1, 1);
    let session = PlanningSession::from_planner(
        DipPlanner::on_topology(&spec, parallel, topology.clone(), PlannerConfig::fast()),
        SessionConfig::default(),
    );

    let request = PlanRequest::new(batches());
    let (first, execution) = session.plan_and_simulate(&request).unwrap();
    assert!(!first.cache_hit);
    assert!(execution.metrics.iteration_time_s > 0.0);
    // Every rank must stay within its *own* device's usable memory — the
    // H800 ranks within the H800 budget, not the roomier H20 one (budgeting
    // every rank from the largest device is exactly the bug class the
    // per-device budgets exist to prevent).
    for timeline in &execution.report.ranks {
        let device = topology.rank_device(timeline.rank, parallel.tp);
        assert!(
            timeline.peak_memory <= device.usable_memory() as i64,
            "rank {} peaks at {} bytes, exceeding its own device's usable {}",
            timeline.rank,
            timeline.peak_memory,
            device.usable_memory()
        );
    }

    // Repeated shapes hit the (topology-keyed) cache as usual.
    let second = session.plan(&request).unwrap();
    assert!(second.cache_hit);
    assert_eq!(first.plan.orders, second.plan.orders);
}

#[test]
fn latency_balanced_sessions_respect_per_device_memory_end_to_end() {
    // Same property as the capacity-aware test above, under the
    // latency-balanced mode: the DP shifts far more layers onto the H800
    // ranks than the capacity heuristic does, so the simulated peak on
    // each rank must still stay within that rank's own device budget.
    let spec = zoo::vlm_s();
    let parallel = ParallelConfig::new(4, 4, 1);
    let topology = ClusterTopology::mixed_h800_h20(1, 1);
    let mut config = PlannerConfig::fast();
    config.partitioner.placement = PlacementMode::LatencyBalanced;
    let session = PlanningSession::from_planner(
        DipPlanner::on_topology(&spec, parallel, topology.clone(), config),
        SessionConfig::default(),
    );
    let (_, execution) = session
        .plan_and_simulate(&PlanRequest::new(batches()))
        .unwrap();
    for timeline in &execution.report.ranks {
        let device = topology.rank_device(timeline.rank, parallel.tp);
        assert!(
            timeline.peak_memory <= device.usable_memory() as i64,
            "rank {} peaks at {} bytes, exceeding its own device's usable {}",
            timeline.rank,
            timeline.peak_memory,
            device.usable_memory()
        );
    }
}

#[test]
fn mixed_cluster_lands_between_the_uniform_clusters() {
    // Iteration time should order uniform-H800 ≤ mixed ≤ uniform-H20: the
    // H20's 6.7× lower compute dominates, and the mixed cluster sits in
    // between because half its stages still run on H800 silicon.
    let spec = zoo::vlm_s();
    let parallel = ParallelConfig::new(4, 4, 1);
    let run = |topology: ClusterTopology| {
        let planner = DipPlanner::on_topology(&spec, parallel, topology, deterministic_config());
        let (_, outcome) = planner.plan_and_simulate(&batches()).unwrap();
        outcome.metrics.iteration_time_s
    };
    let h800 = run(ClusterTopology::mixed_h800_h20(2, 0));
    let mixed = run(ClusterTopology::mixed_h800_h20(1, 1));
    let h20 = run(ClusterTopology::mixed_h800_h20(0, 2));
    assert!(
        h800 <= mixed && mixed <= h20,
        "expected H800 {h800} <= mixed {mixed} <= H20 {h20}"
    );
}
