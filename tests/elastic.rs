//! Properties of the elastic scenario layer: replanning onto an unchanged
//! topology is byte-identical with zero migration, an infinite migration
//! weight never moves state that could legally stay, a weight-0 elastic
//! replan stays within bounded simulated regret of a cold replan (while
//! beating its recovery bill), and a fixed seed + failure schedule replays
//! a bit-identical recovery sequence at any worker count — plus regression
//! tests pinning the named `InvalidRequest` guard arms of
//! `plan_iteration_delta`.

use dip_bench::vlm_batch;
use dip_core::{DipPlan, DipPlanner, ElasticCandidate, ElasticConfig, PlanTier, PlannerConfig};
use dip_data::FailureSchedule;
use dip_models::{zoo, BatchWorkload, Modality, ModalityWorkload};
use dip_pipeline::ParallelConfig;
use dip_sim::ClusterTopology;
use proptest::prelude::*;
use std::time::Duration;

/// The regret bound the elastic tier is held to at `migration_weight = 0`:
/// the elastic plan's simulated iteration time may exceed a fresh
/// full-budget cold replan's by at most 10%.
const REGRET_EPSILON: f64 = 0.10;

fn parallel() -> ParallelConfig {
    ParallelConfig::new(4, 4, 1)
}

/// A planner configuration with a pure virtual-time budget, so plans are a
/// function of (seed, shape, topology) only — never of wall clocks or
/// worker counts.
fn time_budgeted_config(workers: usize, budget_ms: u64, seed: u64) -> PlannerConfig {
    let mut config = PlannerConfig::default().with_num_threads(1);
    config.search.workers = workers;
    config.search.time_budget = Duration::from_millis(budget_ms);
    config.search.max_evaluations = None;
    config.search.streams = 4;
    config.search.seed = seed;
    config
}

fn assert_plans_bit_identical(a: &DipPlan, b: &DipPlan, what: &str) {
    assert_eq!(a.graph, b.graph, "{what}: stage graphs differ");
    assert_eq!(a.orders, b.orders, "{what}: rank orders differ");
    assert_eq!(
        a.segment_priorities, b.segment_priorities,
        "{what}: priorities differ"
    );
    assert_eq!(a.memory_plan, b.memory_plan, "{what}: memory plans differ");
    assert_eq!(
        a.sub_microbatches, b.sub_microbatches,
        "{what}: sub-microbatch plans differ"
    );
    assert_eq!(a.placement, b.placement, "{what}: placements differ");
    assert_eq!(
        a.topology_fingerprint, b.topology_fingerprint,
        "{what}: topology fingerprints differ"
    );
    assert_eq!(
        a.stats.planned_time_s.to_bits(),
        b.stats.planned_time_s.to_bits(),
        "{what}: planned times differ bit-wise"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Invariant (i): replanning onto an *unchanged* topology returns the
    /// old plan byte-identical, with `bytes_moved == 0` and the `Unchanged`
    /// candidate — elasticity costs nothing when nothing happened.
    #[test]
    fn unchanged_topology_replans_byte_identically_with_zero_migration(
        images_a in 2u64..=48,
        images_b in 2u64..=48,
        seed in 0u64..=1000,
    ) {
        let spec = zoo::vlm_s();
        let topology = ClusterTopology::mixed_h800_h20(1, 1);
        let batches = vec![vlm_batch(images_a), vlm_batch(images_b)];
        let planner = DipPlanner::on_topology(
            &spec,
            parallel(),
            topology.clone(),
            time_budgeted_config(2, 40, seed),
        );
        let old_plan = planner.plan_iteration(&batches).unwrap();

        let replanner = DipPlanner::on_topology(
            &spec,
            parallel(),
            topology.clone(),
            time_budgeted_config(2, 40, seed),
        );
        let outcome = replanner
            .replan_elastic(&batches, &old_plan, &topology, &ElasticConfig::default())
            .unwrap();
        prop_assert_eq!(outcome.candidate, ElasticCandidate::Unchanged);
        prop_assert_eq!(outcome.migration.bytes_moved, 0);
        prop_assert_eq!(outcome.migration.transfer_time_s, 0.0);
        prop_assert!(outcome.delta.is_identity());
        assert_plans_bit_identical(&outcome.plan, &old_plan, "unchanged-topology replan");
    }

    /// Invariant (ii): as `migration_weight → ∞` the replanner never moves
    /// state that could legally stay. On a tail-node kill the surviving
    /// ranks keep their devices, so everything moved must be state whose
    /// host died (`bytes_moved == bytes_restored`), and the transfer bill
    /// is never above the weight-0 plan's.
    #[test]
    fn infinite_migration_weight_only_moves_state_that_must_move(
        images_a in 2u64..=48,
        images_b in 2u64..=48,
        seed in 0u64..=1000,
    ) {
        let spec = zoo::vlm_s();
        let old_topology = ClusterTopology::mixed_h800_h20(1, 1);
        let new_topology = ClusterTopology::mixed_h800_h20(1, 0);
        let batches = vec![vlm_batch(images_a), vlm_batch(images_b)];
        let planner = DipPlanner::on_topology(
            &spec,
            parallel(),
            old_topology.clone(),
            time_budgeted_config(2, 40, seed),
        );
        let old_plan = planner.plan_iteration(&batches).unwrap();

        let replanner = DipPlanner::on_topology(
            &spec,
            parallel(),
            new_topology,
            time_budgeted_config(2, 40, seed),
        );
        let frugal = replanner
            .replan_elastic(
                &batches,
                &old_plan,
                &old_topology,
                &ElasticConfig {
                    migration_weight: f64::INFINITY,
                    ..ElasticConfig::default()
                },
            )
            .unwrap();
        prop_assert_eq!(frugal.delta.removed.clone(), vec![2, 3]);
        prop_assert_eq!(
            frugal.migration.bytes_moved,
            frugal.migration.bytes_restored,
            "infinite weight moved surviving state voluntarily"
        );
        prop_assert_eq!(frugal.plan.stats.tier, PlanTier::Elastic);

        let eager = replanner
            .replan_elastic(
                &batches,
                &old_plan,
                &old_topology,
                &ElasticConfig {
                    migration_weight: 0.0,
                    ..ElasticConfig::default()
                },
            )
            .unwrap();
        prop_assert!(
            frugal.migration.transfer_time_s <= eager.migration.transfer_time_s,
            "∞-weight transfer {} exceeds 0-weight transfer {}",
            frugal.migration.transfer_time_s,
            eager.migration.transfer_time_s
        );
    }

    /// Invariant (iii): at weight 0 the elastic replan's simulated
    /// iteration time stays within bounded regret of a fresh full-budget
    /// cold plan on the new topology — while its recovery bill (virtual
    /// planning time + state transfer) undercuts the cold path's
    /// (full-budget planning + full state restore).
    #[test]
    fn weight_zero_elastic_replan_bounds_regret_and_beats_cold_recovery(
        images_a in 2u64..=48,
        images_b in 2u64..=48,
        seed in 0u64..=1000,
    ) {
        let spec = zoo::vlm_s();
        let old_topology = ClusterTopology::mixed_h800_h20(1, 1);
        let new_topology = ClusterTopology::mixed_h800_h20(1, 0);
        let batches = vec![vlm_batch(images_a), vlm_batch(images_b)];
        let planner = DipPlanner::on_topology(
            &spec,
            parallel(),
            old_topology.clone(),
            time_budgeted_config(2, 40, seed),
        );
        let old_plan = planner.plan_iteration(&batches).unwrap();

        let replanner = DipPlanner::on_topology(
            &spec,
            parallel(),
            new_topology.clone(),
            time_budgeted_config(2, 40, seed),
        );
        let outcome = replanner
            .replan_elastic(
                &batches,
                &old_plan,
                &old_topology,
                &ElasticConfig {
                    migration_weight: 0.0,
                    ..ElasticConfig::default()
                },
            )
            .unwrap();
        let elastic_time = replanner
            .simulate(&outcome.plan)
            .unwrap()
            .metrics
            .iteration_time_s;

        let cold_planner = DipPlanner::on_topology(
            &spec,
            parallel(),
            new_topology,
            time_budgeted_config(2, 40, seed),
        );
        let cold_plan = cold_planner.plan_iteration(&batches).unwrap();
        let cold_time = cold_planner
            .simulate(&cold_plan)
            .unwrap()
            .metrics
            .iteration_time_s;

        prop_assert!(
            elastic_time <= cold_time * (1.0 + REGRET_EPSILON),
            "regret {:.4} exceeds ε = {REGRET_EPSILON}: elastic {elastic_time} vs cold {cold_time}",
            elastic_time / cold_time - 1.0,
        );

        let elastic_recovery = outcome.planning_virtual_s + outcome.migration.transfer_time_s;
        let cold_recovery = cold_planner.cold_recovery_time_s(&cold_plan);
        prop_assert!(
            elastic_recovery < cold_recovery,
            "elastic recovery {elastic_recovery} not below cold recovery {cold_recovery}"
        );
    }
}

/// Invariant (iv): a fixed seed and a fixed failure schedule replay a
/// bit-identical recovery sequence — every elastic replan's candidate,
/// byte count and served plan — at 1, 2, 4 and 8 search workers. Elastic
/// replanning inherits the virtual-time determinism of the delta search.
#[test]
fn recovery_sequence_is_bit_identical_across_worker_counts() {
    let spec = zoo::vlm_s();
    let base = ClusterTopology::mixed_h800_h20(1, 1);
    let schedule = FailureSchedule::seeded(&base, 8, 3, 0xE1A5);
    assert!(
        !schedule.topologies().is_empty(),
        "the seeded schedule must produce at least one topology change"
    );
    let batches = vec![vlm_batch(12), vlm_batch(40)];

    let replay = |workers: usize| -> Vec<(ElasticCandidate, u64, DipPlan)> {
        let mut topology = base.clone();
        let planner = DipPlanner::on_topology(
            &spec,
            parallel(),
            topology.clone(),
            time_budgeted_config(workers, 40, 7),
        );
        let mut plan = planner.plan_iteration(&batches).unwrap();
        let mut sequence = Vec::new();
        for (_, new_topology) in schedule.topologies() {
            let replanner = DipPlanner::on_topology(
                &spec,
                parallel(),
                new_topology.clone(),
                time_budgeted_config(workers, 40, 7),
            );
            let outcome = replanner
                .replan_elastic(&batches, &plan, &topology, &ElasticConfig::default())
                .unwrap();
            sequence.push((
                outcome.candidate,
                outcome.migration.bytes_moved,
                outcome.plan.clone(),
            ));
            plan = outcome.plan;
            topology = new_topology;
        }
        sequence
    };

    let baseline = replay(1);
    for workers in [2usize, 4, 8] {
        let run = replay(workers);
        assert_eq!(run.len(), baseline.len());
        for (i, ((cand_a, bytes_a, plan_a), (cand_b, bytes_b, plan_b))) in
            baseline.iter().zip(&run).enumerate()
        {
            assert_eq!(
                cand_a, cand_b,
                "event {i}: candidate diverged at {workers} workers"
            );
            assert_eq!(
                bytes_a, bytes_b,
                "event {i}: bytes moved diverged at {workers} workers"
            );
            assert_plans_bit_identical(plan_a, plan_b, &format!("event {i} at {workers} workers"));
        }
    }
}

// ---------------------------------------------------------------------------
// Structural-guard regression tests: every `InvalidRequest` mismatch arm of
// `plan_iteration_delta` fires on the matching malformed request and names
// the mismatched field.
// ---------------------------------------------------------------------------

fn text_batch(tokens: u64) -> BatchWorkload {
    BatchWorkload::new().with(Modality::Text, ModalityWorkload::new(tokens, 1))
}

#[test]
fn delta_guard_names_the_microbatch_count_mismatch() {
    let spec = zoo::vlm_s();
    let topology = ClusterTopology::mixed_h800_h20(1, 1);
    let planner =
        DipPlanner::on_topology(&spec, parallel(), topology, time_budgeted_config(2, 40, 3));
    let anchor = planner
        .plan_iteration(&[vlm_batch(8), vlm_batch(24)])
        .unwrap();
    let err = planner
        .plan_iteration_delta(&[vlm_batch(8), vlm_batch(24), vlm_batch(40)], &anchor)
        .unwrap_err();
    assert!(
        err.to_string().contains("microbatch count"),
        "error must name the microbatch count: {err}"
    );
}

#[test]
fn delta_guard_names_the_modality_set_mismatch() {
    let spec = zoo::vlm_s();
    let topology = ClusterTopology::mixed_h800_h20(1, 1);
    let planner =
        DipPlanner::on_topology(&spec, parallel(), topology, time_budgeted_config(2, 40, 3));
    let anchor = planner
        .plan_iteration(&[vlm_batch(8), vlm_batch(24)])
        .unwrap();
    let err = planner
        .plan_iteration_delta(&[text_batch(4096), text_batch(8192)], &anchor)
        .unwrap_err();
    assert!(
        err.to_string().contains("modality set"),
        "error must name the modality set: {err}"
    );
}

#[test]
fn delta_guard_names_the_topology_fingerprint_mismatch() {
    let spec = zoo::vlm_s();
    let batches = [vlm_batch(8), vlm_batch(24)];
    let old_planner = DipPlanner::on_topology(
        &spec,
        parallel(),
        ClusterTopology::mixed_h800_h20(1, 1),
        time_budgeted_config(2, 40, 3),
    );
    let anchor = old_planner.plan_iteration(&batches).unwrap();
    let other_planner = DipPlanner::on_topology(
        &spec,
        parallel(),
        ClusterTopology::mixed_h800_h20(2, 0),
        time_budgeted_config(2, 40, 3),
    );
    let err = other_planner
        .plan_iteration_delta(&batches, &anchor)
        .unwrap_err();
    assert!(
        err.to_string().contains("topology fingerprint"),
        "error must name the topology fingerprint: {err}"
    );
}
