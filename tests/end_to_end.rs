//! Cross-crate integration tests: data generation → partitioning → planning
//! → simulation, and the headline end-to-end property of the paper (DIP
//! outperforms the baselines on dynamic multimodal workloads).

use dip_bench::{run_all_systems, vlm_batches_from_datasets, ExperimentScale};
use dip_core::{DipPlanner, PlannerConfig};
use dip_data::{BatchGenerator, DatasetMix, DynamicWorkloadController, ImageBoundSchedule};
use dip_models::zoo;
use dip_pipeline::baselines::{simulate_megatron, BaselineContext};
use dip_pipeline::ParallelConfig;
use dip_sim::ClusterSpec;

fn quick_scale() -> ExperimentScale {
    ExperimentScale {
        microbatches: 8,
        iterations: 1,
        search_ms: 200,
        workers: 2,
    }
}

#[test]
fn dip_beats_every_baseline_on_vlm_s_dataset_batches() {
    let scale = quick_scale();
    let spec = zoo::vlm_s();
    let cluster = ClusterSpec::h800_cluster(2);
    let batches = vlm_batches_from_datasets(scale.microbatches, 2024);
    let results = run_all_systems(
        &spec,
        ParallelConfig::new(4, 4, 1),
        &cluster,
        &batches,
        &scale,
    );
    assert_eq!(results.len(), 4, "expected all four systems to run");
    let time_of = |name: &str| {
        results
            .iter()
            .find(|r| r.system == name)
            .map(|r| r.metrics.iteration_time_s)
            .unwrap()
    };
    let dip = time_of("DIP");
    assert!(dip < time_of("Megatron-LM"), "DIP must beat Megatron-LM");
    assert!(dip < time_of("nnScaler*") * 1.02);
    assert!(dip < time_of("Optimus") * 1.02);
}

#[test]
fn dip_advantage_grows_with_image_count_under_the_fig8b_envelope() {
    let spec = zoo::vlm_s();
    let cluster = ClusterSpec::h800_cluster(2);
    let parallel = ParallelConfig::new(4, 4, 1);
    let ctx = BaselineContext::new(&spec, parallel, &cluster);
    let planner = DipPlanner::new(&spec, parallel, &cluster, PlannerConfig::fast());

    let generator = BatchGenerator::vlm(DatasetMix::vlm_default(), 6, 99);
    let mut controller = DynamicWorkloadController::new(generator, ImageBoundSchedule::fig8b());

    let mut peak_gain: f64 = 0.0;
    let mut quiet_gain: f64 = 0.0;
    for _ in 0..8 {
        let Some(iteration) = controller.next_iteration() else {
            break;
        };
        let batches = iteration.batch.workloads();
        let megatron = simulate_megatron(&ctx, &batches, 1).unwrap().metrics;
        let (_, dip) = planner.plan_and_simulate(&batches).unwrap();
        let gain = megatron.iteration_time_s / dip.metrics.iteration_time_s;
        if iteration.batch.avg_images_per_microbatch() > 15.0 {
            peak_gain = peak_gain.max(gain);
        } else if iteration.batch.avg_images_per_microbatch() < 5.0 {
            quiet_gain = quiet_gain.max(gain);
        }
    }
    assert!(peak_gain > 1.0, "DIP should win during image-heavy phases");
    // During image-heavy phases the modality imbalance is largest, so DIP's
    // advantage should be at least as large as in near-text-only phases.
    if quiet_gain > 0.0 {
        assert!(peak_gain + 0.10 >= quiet_gain);
    }
}

#[test]
fn t2v_pipeline_runs_end_to_end_from_dataset_to_metrics() {
    let spec = zoo::t2v_s();
    let cluster = ClusterSpec::h800_cluster(2);
    let parallel = ParallelConfig::new(4, 4, 1);
    let mut generator = BatchGenerator::t2v(DatasetMix::t2v_default(), 6, 5);
    let batches = generator.next_batch().workloads();

    let planner = DipPlanner::new(&spec, parallel, &cluster, PlannerConfig::fast());
    let (plan, outcome) = planner.plan_and_simulate(&batches).unwrap();
    assert!(outcome.metrics.iteration_time_s > 0.0);
    assert!(outcome.metrics.mfu > 0.0 && outcome.metrics.mfu < 1.0);
    assert_eq!(plan.orders.num_stages(), plan.graph.len());

    let ctx = BaselineContext::new(&spec, parallel, &cluster);
    let megatron = simulate_megatron(&ctx, &batches, 1).unwrap().metrics;
    assert!(outcome.metrics.iteration_time_s <= megatron.iteration_time_s * 1.05);
}

#[test]
fn every_table3_setup_plans_and_simulates() {
    for setup in zoo::table3_setups() {
        let parallel = ParallelConfig::new(setup.tp, setup.pp, setup.dp);
        let cluster = ClusterSpec::h800_cluster((setup.num_gpus() / 8).max(1));
        let is_t2v = setup.name.starts_with("T2V");
        let batches = if is_t2v {
            dip_bench::t2v_batches_from_datasets(4, 31)
        } else {
            vlm_batches_from_datasets(4, 31)
        };
        let planner = DipPlanner::new(&setup.model, parallel, &cluster, PlannerConfig::fast());
        let (_, outcome) = planner
            .plan_and_simulate(&batches)
            .unwrap_or_else(|e| panic!("{} failed: {e}", setup.name));
        assert!(
            outcome.metrics.iteration_time_s > 0.0,
            "{} produced a zero-time iteration",
            setup.name
        );
        assert!(
            outcome.metrics.peak_memory_bytes <= cluster.gpu.mem_capacity as i64,
            "{} exceeds GPU memory",
            setup.name
        );
    }
}
