//! Integration tests of the planning-session layer over dynamic workload
//! traces: repeated workload signatures are served from the plan cache,
//! total planning time over a repeated-shape trace drops by at least 2×
//! versus cold planning, and cached plans simulate to identical iteration
//! times.

use dip_core::{PlanRequest, PlannerConfig, PlanningSession, SessionConfig, WorkloadSignature};
use dip_data::{BatchGenerator, DatasetMix, DynamicWorkloadController, ImageBoundSchedule};
use dip_models::zoo;
use dip_pipeline::ParallelConfig;
use dip_sim::ClusterSpec;
use std::time::Duration;

/// A short repeated-shape dynamic trace: one recorded pass over a
/// rise-and-fall envelope, replayed `passes` times (as in `fig8b_dynamic`).
fn replayed_requests(iterations_per_pass: usize, passes: usize) -> Vec<PlanRequest> {
    let generator = BatchGenerator::vlm(DatasetMix::vlm_default(), 4, 8);
    let mut controller = DynamicWorkloadController::new(
        generator,
        ImageBoundSchedule::new(
            ImageBoundSchedule::fig8b()
                .iter()
                .take(iterations_per_pass)
                .collect(),
        ),
    );
    let trace = controller.collect_trace();
    trace
        .replay(passes)
        .map(|iteration| PlanRequest::new(iteration.batch.workloads()))
        .collect()
}

fn planner_config() -> PlannerConfig {
    let mut config = PlannerConfig::fast();
    config.search.time_budget = Duration::from_millis(80);
    config.search.workers = 2;
    config
}

#[test]
fn second_pass_over_a_replayed_trace_is_served_from_the_cache() {
    let spec = zoo::vlm_s();
    let cluster = ClusterSpec::h800_cluster(2);
    let parallel = ParallelConfig::new(4, 4, 1);
    let requests = replayed_requests(4, 2);

    let session = PlanningSession::new(&spec, parallel, &cluster, planner_config());
    let mut first_pass = Vec::new();
    for (i, request) in requests.iter().enumerate() {
        let (outcome, execution) = session.plan_and_simulate(request).unwrap();
        if i < 4 {
            assert!(!outcome.cache_hit, "pass 1 iteration {i} must be a miss");
            first_pass.push((outcome.signature, execution.metrics.iteration_time_s));
        } else {
            let (signature, time) = first_pass[i - 4];
            assert!(outcome.cache_hit, "pass 2 iteration {i} must hit the cache");
            assert_eq!(outcome.signature, signature);
            // Identical plans simulate to identical iteration times.
            assert!(
                (execution.metrics.iteration_time_s - time).abs() < 1e-12,
                "iteration {i}: {} vs {}",
                execution.metrics.iteration_time_s,
                time
            );
        }
    }
    let stats = session.stats();
    assert_eq!(stats.requests, 8);
    assert_eq!(stats.exact_hits, 4);
    assert_eq!(stats.cache_misses, 4);
}

#[test]
fn plan_cache_cuts_total_planning_time_at_least_2x_on_a_repeated_trace() {
    let spec = zoo::vlm_s();
    let cluster = ClusterSpec::h800_cluster(2);
    let parallel = ParallelConfig::new(4, 4, 1);
    // 3 shapes × 3 passes: 3 misses, 6 hits with the cache enabled.
    let requests = replayed_requests(3, 3);

    let total_planning = |session_config: SessionConfig| {
        let session = PlanningSession::with_config(
            &spec,
            parallel,
            &cluster,
            planner_config(),
            session_config,
        );
        let mut total = Duration::ZERO;
        for request in &requests {
            total += session.plan(request).unwrap().plan.stats.planning_time;
        }
        total
    };

    let cold = total_planning(SessionConfig::cold());
    let cached = total_planning(SessionConfig::default());
    assert!(
        cached * 2 <= cold,
        "cached planning {cached:?} should be at least 2x faster than cold {cold:?}"
    );
}

#[test]
fn workload_signatures_of_a_replayed_trace_repeat_exactly() {
    let requests = replayed_requests(5, 2);
    let signatures: Vec<WorkloadSignature> = requests.iter().map(|r| r.signature()).collect();
    assert_eq!(&signatures[..5], &signatures[5..]);
    // Distinct envelope phases produce distinct signatures (the bounds
    // change every iteration of the rise phase).
    assert_ne!(signatures[0], signatures[1]);
}

/// Eight threads hammer one shared session with pre-warmed shapes: every
/// concurrent request must hit the cache, and the hit/miss/eviction totals
/// must come out exact — no lost updates, no double counting.
#[test]
fn shared_session_serves_eight_threads_with_exact_totals() {
    let spec = zoo::vlm_s();
    let cluster = ClusterSpec::h800_cluster(2);
    let parallel = ParallelConfig::new(4, 4, 1);
    let session = PlanningSession::new(&spec, parallel, &cluster, planner_config());

    let shapes: Vec<PlanRequest> = replayed_requests(3, 1);
    for request in &shapes {
        assert!(!session.plan(request).unwrap().cache_hit, "pre-warm miss");
    }

    const THREADS: usize = 8;
    const ROUNDS: usize = 20;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let session = &session;
            let shapes = &shapes;
            scope.spawn(move || {
                for i in 0..ROUNDS {
                    let request = &shapes[(t + i) % shapes.len()];
                    let outcome = session.plan(request).unwrap();
                    assert!(outcome.cache_hit, "thread {t} round {i} missed");
                    assert_eq!(outcome.signature, request.signature());
                }
            });
        }
    });

    let stats = session.stats();
    assert_eq!(stats.requests, (shapes.len() + THREADS * ROUNDS) as u64);
    assert_eq!(stats.exact_hits, (THREADS * ROUNDS) as u64);
    assert_eq!(stats.cache_misses, shapes.len() as u64);
    assert_eq!(stats.evictions, 0);
    assert_eq!(
        stats.requests,
        stats.exact_hits + stats.fuzzy_hits + stats.cache_misses
    );
    assert_eq!(session.cached_plans(), shapes.len());
}

/// Eight threads hammer a fuzzy-enabled session with *fresh* in-bucket
/// jitter variants of two pre-anchored base shapes: no request repeats an
/// exact signature, so every one must be served by the fuzzy tier, and the
/// tier totals must partition the request count exactly — a fuzzy hit is
/// neither an exact hit nor a miss.
#[test]
fn fuzzy_tier_totals_partition_requests_under_contention() {
    use dip_bench::vlm_batch_jittered;
    use dip_core::{BucketingConfig, PlanTier};

    let spec = zoo::vlm_s();
    let cluster = ClusterSpec::h800_cluster(2);
    let parallel = ParallelConfig::new(4, 4, 1);
    let session = PlanningSession::with_config(
        &spec,
        parallel,
        &cluster,
        planner_config(),
        SessionConfig::fuzzy(),
    );
    let bucketing = BucketingConfig::default();
    let base = |images| {
        PlanRequest::new(vec![
            vlm_batch_jittered(images, 0, &bucketing),
            vlm_batch_jittered(images + 16, 0, &bucketing),
        ])
    };
    // Anchor both buckets with cold plans.
    for images in [8u64, 11] {
        assert_eq!(session.plan(&base(images)).unwrap().tier, PlanTier::Cold);
    }

    const THREADS: usize = 8;
    const ROUNDS: usize = 6;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let session = &session;
            let bucketing = &bucketing;
            scope.spawn(move || {
                for i in 0..ROUNDS {
                    // A unique in-bucket jitter per (thread, round): fresh
                    // exact signature, same canonical bucket.
                    let dt = (t * ROUNDS + i + 1) as u64;
                    let images = if (t + i) % 2 == 0 { 8 } else { 11 };
                    let request = PlanRequest::new(vec![
                        vlm_batch_jittered(images, dt, bucketing),
                        vlm_batch_jittered(images + 16, dt, bucketing),
                    ]);
                    let outcome = session.plan(&request).unwrap();
                    assert_eq!(outcome.tier, PlanTier::Fuzzy, "thread {t} round {i}");
                    assert!(!outcome.cache_hit, "a fuzzy hit is not an exact hit");
                }
            });
        }
    });

    let stats = session.stats();
    assert_eq!(stats.requests, (2 + THREADS * ROUNDS) as u64);
    assert_eq!(stats.fuzzy_hits, (THREADS * ROUNDS) as u64);
    assert_eq!(stats.exact_hits, 0);
    assert_eq!(stats.cache_misses, 2, "a fuzzy hit is not a miss");
    assert_eq!(
        stats.requests,
        stats.exact_hits + stats.fuzzy_hits + stats.cache_misses
    );
}

/// `plan_many` plans a whole trace through the worker pool and returns the
/// outcomes in request order, with the same signatures sequential planning
/// would produce.
#[test]
fn plan_many_plans_a_trace_concurrently_in_request_order() {
    let spec = zoo::vlm_s();
    let cluster = ClusterSpec::h800_cluster(2);
    let parallel = ParallelConfig::new(4, 4, 1);
    let mut config = planner_config();
    config.num_threads = 4;
    let mut session = PlanningSession::new(&spec, parallel, &cluster, config);
    // Pin the placement first so concurrent first-iteration planning does
    // not race the offline phase.
    let requests = replayed_requests(4, 2);
    session
        .offline_partition(&requests[0].microbatches()[0])
        .unwrap();

    let outcomes = session.plan_many(&requests);
    assert_eq!(outcomes.len(), requests.len());
    for (request, outcome) in requests.iter().zip(&outcomes) {
        let outcome = outcome.as_ref().expect("plan_many outcome");
        assert_eq!(outcome.signature, request.signature());
        session.simulate(&outcome.plan).expect("plan is simulable");
    }
    let stats = session.stats();
    assert_eq!(stats.requests, requests.len() as u64);
    assert_eq!(
        stats.requests,
        stats.exact_hits + stats.fuzzy_hits + stats.cache_misses
    );
    // The trace repeats each of the 4 shapes twice; every shape is planned
    // at least once, and afterwards every shape is cached.
    assert!(stats.cache_misses >= 4);
    assert_eq!(session.cached_plans(), 4);
    for request in &requests {
        assert!(session.plan(request).unwrap().cache_hit);
    }
}

#[test]
fn warm_start_does_not_change_plan_validity_and_helps_the_incumbent() {
    let spec = zoo::vlm_s();
    let cluster = ClusterSpec::h800_cluster(2);
    let parallel = ParallelConfig::new(4, 4, 1);
    let requests = replayed_requests(4, 1);

    let session = PlanningSession::new(&spec, parallel, &cluster, planner_config());
    for (i, request) in requests.iter().enumerate() {
        let outcome = session.plan(request).unwrap();
        assert_eq!(outcome.plan.stats.warm_started, i > 0);
        // Warm-started plans are still complete, valid schedules.
        assert_eq!(outcome.plan.orders.num_stages(), outcome.plan.graph.len());
        session.simulate(&outcome.plan).unwrap();
    }
    assert_eq!(session.stats().warm_started_plans, 3);
}
