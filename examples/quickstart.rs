//! Quickstart: plan and simulate VLM-S training iterations with DIP's
//! planning session and compare them against Megatron-LM's 1F1B schedule.
//!
//! Run with: `cargo run --release --example quickstart`

use dip_core::{PlanRequest, PlannerConfig, PlanningSession};
use dip_models::{zoo, BatchWorkload, Modality, ModalityWorkload};
use dip_pipeline::baselines::{simulate_megatron, BaselineContext};
use dip_pipeline::ParallelConfig;
use dip_sim::ClusterSpec;

fn vlm_batch(images: u64) -> BatchWorkload {
    BatchWorkload::new()
        .with(
            Modality::Text,
            ModalityWorkload::new(8192 - images * 169, 1),
        )
        .with(Modality::Image, ModalityWorkload::new(images * 169, images))
}

fn main() {
    // VLM-S (ViT 5B + Llama3 8B) on 16 simulated H800 GPUs, TP4 / PP4.
    let spec = zoo::vlm_s();
    let cluster = ClusterSpec::h800_cluster(2);
    let parallel = ParallelConfig::new(4, 4, 1);

    // One iteration of eight microbatches with fluctuating image counts —
    // the "dynamic imbalance" the paper targets.
    let batches: Vec<BatchWorkload> = [2u64, 40, 10, 30, 0, 44, 16, 24]
        .iter()
        .map(|&i| vlm_batch(i))
        .collect();

    // Baseline: Megatron-LM 1F1B over a parameter-balanced partition.
    let ctx = BaselineContext::new(&spec, parallel, &cluster);
    let megatron = simulate_megatron(&ctx, &batches, 1).expect("baseline simulation");

    // DIP: a planning session over the modality-aware partitioner, schedule
    // search and memory optimisation. Sessions cache plans by workload
    // signature, so re-planning a repeated shape is (nearly) free.
    let session = PlanningSession::new(&spec, parallel, &cluster, PlannerConfig::fast());
    let request = PlanRequest::new(batches.clone());
    let (outcome, dip) = session.plan_and_simulate(&request).expect("DIP planning");
    let plan = &outcome.plan;

    println!(
        "model: {} ({:.1}B parameters)",
        spec.name(),
        spec.param_billions()
    );
    println!(
        "microbatches: {} | pipeline segments: {} | workload signature: {}",
        batches.len(),
        plan.segment_priorities.len(),
        outcome.signature
    );
    println!();
    println!(
        "Megatron-LM : {:.3} s/iter | MFU {:.3} | bubble {:.1}%",
        megatron.metrics.iteration_time_s,
        megatron.metrics.mfu,
        megatron.metrics.bubble_fraction * 100.0
    );
    println!(
        "DIP         : {:.3} s/iter | MFU {:.3} | bubble {:.1}%",
        dip.metrics.iteration_time_s,
        dip.metrics.mfu,
        dip.metrics.bubble_fraction * 100.0
    );
    println!();
    println!(
        "DIP throughput gain: {:.1}%  (planning took {:.0} ms, {} schedules evaluated)",
        dip.metrics.speedup_percent_over(&megatron.metrics),
        plan.stats.planning_time.as_secs_f64() * 1e3,
        plan.stats.search_evaluations
    );

    // The next iteration repeats the shape: served from the plan cache.
    let (repeat, _) = session
        .plan_and_simulate(&request)
        .expect("cached planning");
    println!(
        "repeated shape: cache {} in {:.3} ms (session hit rate {:.0}%)",
        if repeat.cache_hit { "hit" } else { "miss" },
        repeat.plan.stats.planning_time.as_secs_f64() * 1e3,
        session.stats().hit_rate() * 100.0
    );
}
