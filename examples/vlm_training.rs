//! A multi-iteration VLM-M training loop under dynamic multimodal data,
//! demonstrating the asynchronous planner: while the cluster "executes" the
//! current iteration, the next iteration's schedule is generated on a CPU
//! worker thread from prefetched metadata (§3.2).
//!
//! Run with: `cargo run --release --example vlm_training`

use dip_core::{DipPlanner, PlannerConfig};
use dip_data::{BatchGenerator, DatasetMix};
use dip_models::zoo;
use dip_pipeline::ParallelConfig;
use dip_sim::ClusterSpec;
use std::time::Duration;

fn main() {
    let spec = zoo::vlm_m();
    let cluster = ClusterSpec::h800_cluster(4);
    let parallel = ParallelConfig::new(8, 4, 1);
    let mut config = PlannerConfig::fast();
    config.search.time_budget = Duration::from_millis(200);
    let planner = DipPlanner::new(&spec, parallel, &cluster, config);

    let mut generator = BatchGenerator::vlm(DatasetMix::vlm_default(), 8, 1234);
    let iterations = 6;

    // Prefetch metadata for the first iteration.
    let mut next_batches = generator.next_batch().workloads();
    planner
        .offline_partition(&next_batches[0])
        .expect("offline partitioning");

    let mut total_time = 0.0;
    let mut total_flops = 0.0;
    for iter in 0..iterations {
        let current = next_batches.clone();
        // Prefetch the following iteration's metadata (step ① of §3.2).
        let upcoming = generator.next_batch().workloads();

        // Plan the *next* iteration asynchronously while the current plan is
        // being executed on the (simulated) GPUs.
        let (current_outcome, next_plan) = std::thread::scope(|scope| {
            let planner_ref = &planner;
            let upcoming_ref = &upcoming;
            let handle = scope.spawn(move || planner_ref.plan_iteration(upcoming_ref).unwrap());
            let plan = planner.plan_iteration(&current).unwrap();
            let outcome = planner.simulate(&plan).unwrap();
            (outcome, handle.join().unwrap())
        });

        total_time += current_outcome.metrics.iteration_time_s;
        total_flops += current_outcome.metrics.model_flops;
        println!(
            "iter {iter:>2}: {:>6.3} s | MFU {:.3} | peak mem {:>5.1} GB | next schedule searched in {:>4.0} ms",
            current_outcome.metrics.iteration_time_s,
            current_outcome.metrics.mfu,
            current_outcome.metrics.peak_memory_bytes as f64 / 1e9,
            next_plan.stats.planning_time.as_secs_f64() * 1e3,
        );
        next_batches = upcoming;
    }
    println!();
    println!(
        "trained {iterations} iterations: avg {:.3} s/iter, aggregate MFU {:.3}",
        total_time / iterations as f64,
        total_flops / (total_time * cluster.gpu.peak_flops * parallel.num_gpus() as f64)
    );
}
