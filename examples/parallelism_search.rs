//! Grid-search over DP/TP/PP configurations for VLM-M on 64 simulated GPUs,
//! the use-case behind the paper's Fig. 13: the training simulator is fast
//! enough to sweep every valid parallelism layout and pick the best.
//!
//! Run with: `cargo run --release --example parallelism_search`

use dip_core::{PlanRequest, PlannerConfig, PlanningSession};
use dip_data::{BatchGenerator, DatasetMix};
use dip_models::zoo;
use dip_pipeline::ParallelConfig;
use dip_sim::ClusterSpec;

fn main() {
    let spec = zoo::vlm_m();
    let cluster = ClusterSpec::h800_cluster(8);
    let mut generator = BatchGenerator::vlm(DatasetMix::vlm_default(), 8, 3);
    let request = PlanRequest::new(generator.next_batch().workloads());

    let mut results = Vec::new();
    for tp in [2usize, 4, 8] {
        for pp in [2usize, 4, 8] {
            let dp = 64 / (tp * pp);
            if dp == 0 || tp * pp * dp != 64 {
                continue;
            }
            let parallel = ParallelConfig::new(tp, pp, dp);
            // One session per layout: the plan cache is keyed by workload
            // signature, which is layout-independent.
            let session = PlanningSession::new(&spec, parallel, &cluster, PlannerConfig::fast());
            match session.plan_and_simulate(&request) {
                Ok((_, outcome)) => {
                    println!(
                        "{parallel}: {:.3} s/iter, MFU {:.3}, peak mem {:.1} GB",
                        outcome.metrics.iteration_time_s,
                        outcome.metrics.mfu,
                        outcome.metrics.peak_memory_bytes as f64 / 1e9
                    );
                    results.push((parallel, outcome.metrics));
                }
                Err(e) => println!("{parallel}: skipped ({e})"),
            }
        }
    }
    if let Some((best, metrics)) = results
        .iter()
        .max_by(|a, b| a.1.mfu.partial_cmp(&b.1.mfu).unwrap())
    {
        println!();
        println!("best configuration: {best} with MFU {:.3}", metrics.mfu);
    }
}
