//! Text-to-video training (T2V-S: Llama3 8B encoder + DiT 5B decoder) with
//! DIP, compared against Megatron-LM over the same clip-grouped microbatches.
//!
//! Run with: `cargo run --release --example t2v_training`

use dip_core::{PlanRequest, PlannerConfig, PlanningSession};
use dip_data::{BatchGenerator, DatasetMix};
use dip_models::zoo;
use dip_pipeline::baselines::{simulate_megatron, BaselineContext};
use dip_pipeline::ParallelConfig;
use dip_sim::ClusterSpec;

fn main() {
    let spec = zoo::t2v_s();
    let cluster = ClusterSpec::h800_cluster(2);
    let parallel = ParallelConfig::new(4, 4, 1);

    let mut generator = BatchGenerator::t2v(DatasetMix::t2v_default(), 8, 7);
    let session = PlanningSession::new(&spec, parallel, &cluster, PlannerConfig::fast());
    let ctx = BaselineContext::new(&spec, parallel, &cluster);

    println!(
        "model: {} ({:.1}B parameters)",
        spec.name(),
        spec.param_billions()
    );
    let mut dip_total = 0.0;
    let mut megatron_total = 0.0;
    for iter in 0..4 {
        let batches = generator.next_batch().workloads();
        let megatron = simulate_megatron(&ctx, &batches, 1).unwrap().metrics;
        let (_, dip) = session
            .plan_and_simulate(&PlanRequest::new(batches))
            .unwrap();
        println!(
            "iter {iter}: Megatron-LM {:.3} s | DIP {:.3} s | DIP gain {:+.1}%",
            megatron.iteration_time_s,
            dip.metrics.iteration_time_s,
            dip.metrics.speedup_percent_over(&megatron)
        );
        dip_total += dip.metrics.iteration_time_s;
        megatron_total += megatron.iteration_time_s;
    }
    println!();
    println!(
        "overall: DIP {:.3} s/iter vs Megatron-LM {:.3} s/iter ({:+.1}% throughput)",
        dip_total / 4.0,
        megatron_total / 4.0,
        (megatron_total / dip_total - 1.0) * 100.0
    );
    let stats = session.stats();
    println!(
        "planner: {} plans ({} warm-started), search {:.0} ms, memory opt {:.0} ms",
        stats.requests,
        stats.warm_started_plans,
        stats.search_time.as_secs_f64() * 1e3,
        stats.memopt_time.as_secs_f64() * 1e3,
    );
}
