//! Planning on a heterogeneous cluster: one node of H800s plus one node of
//! H20s (the two device kinds of the paper's Table 4 testbeds, mixed).
//!
//! The placement mode can be chosen with the first CLI argument or the
//! `DIP_PLACEMENT` environment variable (`round-robin`, `capacity-aware`,
//! `latency-balanced`, or `all` to compare — the default):
//!
//! ```console
//! $ cargo run --release --example heterogeneous_cluster
//! $ cargo run --release --example heterogeneous_cluster -- latency-balanced
//! $ DIP_PLACEMENT=capacity-aware cargo run --release --example heterogeneous_cluster
//! ```
//!
//! The capacity-aware mode distributes layers by spec-sheet capability
//! (peak FLOP/s for the backbone, HBM capacity for modality modules); the
//! latency-balanced mode runs an nnScaler-style DP on *simulated* per-layer
//! latency priced on each hosting rank's own device, which also captures
//! memory-bound layers and small-kernel efficiency roll-off.

use dip_core::{DipPlanner, PlanRequest, PlannerConfig, PlanningSession, SessionConfig};
use dip_models::{zoo, BatchWorkload, Modality, ModalityWorkload};
use dip_pipeline::{ParallelConfig, PlacementMode};
use dip_sim::ClusterTopology;

fn vlm_batch(images: u64) -> BatchWorkload {
    BatchWorkload::new()
        .with(
            Modality::Text,
            ModalityWorkload::new(8192 - images * 169, 1),
        )
        .with(Modality::Image, ModalityWorkload::new(images * 169, images))
}

/// The canonical CLI/env name of a placement mode.
fn mode_name(mode: PlacementMode) -> &'static str {
    match mode {
        PlacementMode::RoundRobin => "round-robin",
        PlacementMode::CapacityAware => "capacity-aware",
        PlacementMode::LatencyBalanced => "latency-balanced",
    }
}

const ALL_MODES: [PlacementMode; 3] = [
    PlacementMode::RoundRobin,
    PlacementMode::CapacityAware,
    PlacementMode::LatencyBalanced,
];

/// Parses the requested placement mode(s) from argv[1] or `DIP_PLACEMENT`;
/// `all` (or nothing) selects every mode for comparison.
fn requested_modes() -> Vec<PlacementMode> {
    let choice = std::env::args()
        .nth(1)
        .or_else(|| std::env::var("DIP_PLACEMENT").ok())
        .unwrap_or_else(|| "all".into());
    match choice.as_str() {
        "all" => ALL_MODES.to_vec(),
        other => match ALL_MODES.iter().find(|&&m| mode_name(m) == other) {
            Some(&m) => vec![m],
            None => {
                eprintln!(
                    "unknown placement mode {other:?}; expected one of \
                     round-robin, capacity-aware, latency-balanced, all"
                );
                std::process::exit(2);
            }
        },
    }
}

fn main() {
    let modes = requested_modes();
    let spec = zoo::vlm_s();
    let parallel = ParallelConfig::new(4, 4, 1);
    // 1 node × 8 H800 + 1 node × 8 H20: at TP=4, pipeline ranks 0–1 run on
    // H800 devices and ranks 2–3 on H20 devices.
    let topology = ClusterTopology::mixed_h800_h20(1, 1);
    println!(
        "cluster: {} GPUs across {} nodes (fingerprint {:016x})",
        topology.num_gpus(),
        topology.num_nodes(),
        topology.fingerprint()
    );
    for rank in 0..parallel.pp {
        let device = topology.rank_device(rank, parallel.tp);
        println!(
            "  rank {rank}: {:.0} TFLOP/s, {} GiB HBM",
            device.peak_flops / 1e12,
            device.mem_capacity >> 30
        );
    }

    let batches: Vec<BatchWorkload> = [24u64, 8, 40, 2].iter().map(|&i| vlm_batch(i)).collect();
    let request = PlanRequest::new(batches);

    for placement in modes {
        let mut config = PlannerConfig::fast();
        config.partitioner.placement = placement;
        let session = PlanningSession::from_planner(
            DipPlanner::on_topology(&spec, parallel, topology.clone(), config),
            SessionConfig::default(),
        );
        let (_, execution) = session.plan_and_simulate(&request).unwrap();
        println!(
            "placement {:<16}: iteration {:.3} s, MFU {:.3}",
            mode_name(placement),
            execution.metrics.iteration_time_s,
            execution.metrics.mfu
        );
    }
}
