//! Planning on a heterogeneous cluster: one node of H800s plus one node of
//! H20s (the two device kinds of the paper's Table 4 testbeds, mixed).
//!
//! ```console
//! $ cargo run --release --example heterogeneous_cluster
//! ```
//!
//! The capacity-aware placement mode gives FLOP-heavy LLM backbone layers
//! to the H800 ranks (≈6.7× the compute) and leans the memory-heavy ViT
//! encoder towards the H20 ranks (20% more HBM), instead of pretending all
//! ranks are equal.

use dip_core::{DipPlanner, PlanRequest, PlannerConfig, PlanningSession, SessionConfig};
use dip_models::{zoo, BatchWorkload, Modality, ModalityWorkload};
use dip_pipeline::{ParallelConfig, PlacementMode};
use dip_sim::ClusterTopology;

fn vlm_batch(images: u64) -> BatchWorkload {
    BatchWorkload::new()
        .with(
            Modality::Text,
            ModalityWorkload::new(8192 - images * 169, 1),
        )
        .with(Modality::Image, ModalityWorkload::new(images * 169, images))
}

fn main() {
    let spec = zoo::vlm_s();
    let parallel = ParallelConfig::new(4, 4, 1);
    // 1 node × 8 H800 + 1 node × 8 H20: at TP=4, pipeline ranks 0–1 run on
    // H800 devices and ranks 2–3 on H20 devices.
    let topology = ClusterTopology::mixed_h800_h20(1, 1);
    println!(
        "cluster: {} GPUs across {} nodes (fingerprint {:016x})",
        topology.num_gpus(),
        topology.num_nodes(),
        topology.fingerprint()
    );
    for rank in 0..parallel.pp {
        let device = topology.rank_device(rank, parallel.tp);
        println!(
            "  rank {rank}: {:.0} TFLOP/s, {} GiB HBM",
            device.peak_flops / 1e12,
            device.mem_capacity >> 30
        );
    }

    let batches: Vec<BatchWorkload> = [24u64, 8, 40, 2].iter().map(|&i| vlm_batch(i)).collect();
    let request = PlanRequest::new(batches);

    for (label, placement) in [
        ("round-robin   ", PlacementMode::RoundRobin),
        ("capacity-aware", PlacementMode::CapacityAware),
    ] {
        let mut config = PlannerConfig::fast();
        config.partitioner.placement = placement;
        let session = PlanningSession::from_planner(
            DipPlanner::on_topology(&spec, parallel, topology.clone(), config),
            SessionConfig::default(),
        );
        let (_, execution) = session.plan_and_simulate(&request).unwrap();
        println!(
            "{label}: iteration {:.3} s, MFU {:.3}",
            execution.metrics.iteration_time_s, execution.metrics.mfu
        );
    }
}
